// Fixed-bin histogram used to render the Fig-6 B_i distributions as
// text-mode bar charts in benchmark output.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace roleshare::util {

class Histogram {
 public:
  /// Bins [lo, hi) into `bins` equal-width buckets; values outside the range
  /// are counted in saturating edge buckets.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(const std::vector<double>& values);

  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const;
  std::size_t total() const { return total_; }

  /// Lower edge of bin i.
  double bin_lo(std::size_t bin) const;
  /// Upper edge of bin i.
  double bin_hi(std::size_t bin) const;

  /// Renders an ASCII bar chart, one row per bin, bar scaled to `width`.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace roleshare::util
