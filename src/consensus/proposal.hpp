// Block proposals and highest-priority selection (§II-B3, Fig 1-b).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "consensus/committee.hpp"
#include "ledger/block.hpp"

namespace roleshare::consensus {

/// "Block proposal" message: the block, the proposer's sortition proof and
/// the derived priority used to drop low-priority proposals early.
struct BlockProposal {
  ledger::NodeId proposer = 0;
  crypto::PublicKey proposer_key;
  ledger::Block block;
  crypto::SortitionResult sortition;
  std::uint64_t priority = 0;

  crypto::Hash256 block_hash() const { return block.hash(); }
};

/// Builds a proposal for a selected leader.
BlockProposal make_proposal(ledger::NodeId proposer,
                            const crypto::PublicKey& key,
                            ledger::Block block,
                            const crypto::SortitionResult& sortition);

/// Verifies the proposal's sortition proof against the round's VRF input
/// and the proposer's stake; checks the claimed priority.
bool verify_proposal(const BlockProposal& proposal,
                     const crypto::VrfInput& input, std::int64_t stake,
                     const crypto::SortitionParams& params);

/// Picks the valid proposal with the highest priority from those a node
/// received; nullopt when the span is empty. Ties break toward the lower
/// block hash so every node resolves ties identically.
std::optional<BlockProposal> select_best_proposal(
    std::span<const BlockProposal> received);

}  // namespace roleshare::consensus
