// E8 — Equilibrium structure (Lemmas 1-2, Theorems 1-3) verified
// constructively on sampled game instances: exhaustive unilateral-deviation
// scans, not trust in the closed-form bounds.
#include <cstdio>

#include "bench_util.hpp"
#include "econ/optimizer.hpp"
#include "game/best_response.hpp"
#include "game/equilibrium.hpp"
#include "util/distributions.hpp"

using namespace roleshare;

namespace {

// Samples a role snapshot: a few leaders/committee members, many others.
econ::RoleSnapshot sample_snapshot(util::Rng& rng, std::size_t n) {
  std::vector<consensus::Role> roles(n, consensus::Role::Other);
  std::vector<std::int64_t> stakes(n);
  const util::UniformStake dist(1, 50);
  for (auto& s : stakes) s = dist.sample(rng);
  const std::size_t leaders = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  const std::size_t committee =
      5 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  const auto picks = rng.sample_without_replacement(n, leaders + committee);
  for (std::size_t i = 0; i < picks.size(); ++i)
    roles[picks[i]] =
        i < leaders ? consensus::Role::Leader : consensus::Role::Committee;
  return econ::RoleSnapshot(std::move(roles), std::move(stakes));
}

}  // namespace

int main(int argc, char** argv) {
  const auto games =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "games", 25));
  const auto players =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "players", 60));

  bench::print_header("NE verification",
                      "Lemma 1, Theorems 1-3 on sampled games");
  std::printf("games=%zu players=%zu stakes=U(1,50)\n\n", games, players);

  util::Rng rng(99);
  const econ::CostModel costs;
  std::size_t lemma1_ok = 0, thm1_ok = 0, thm2_ok = 0, thm3_ok = 0,
              thm3_below_fails = 0, brd_fixpoint = 0;

  for (std::size_t g = 0; g < games; ++g) {
    econ::RoleSnapshot snap = sample_snapshot(rng, players);

    // --- G_Al (stake-proportional), Theorems 1-2 + Lemma 1.
    const game::GameConfig gal{snap,
                               costs,
                               game::SchemeKind::StakeProportional,
                               20e6,
                               econ::RewardSplit(0.02, 0.03),
                               {},
                               0.685};
    const game::AlgorandGame game_al(gal);
    util::Rng lemma_rng = rng.split(g);
    if (game::verify_lemma1(game_al, lemma_rng, 8).holds) ++lemma1_ok;
    if (game::verify_theorem1(game_al).holds) ++thm1_ok;
    if (game::verify_theorem2(game_al).holds) ++thm2_ok;

    // --- G_Al+ (role-based), Theorem 3 with Y = all Others.
    std::vector<bool> sync_set(snap.node_count(), false);
    for (std::size_t v = 0; v < snap.node_count(); ++v)
      if (snap.role(static_cast<ledger::NodeId>(v)) == consensus::Role::Other)
        sync_set[v] = true;

    const econ::RewardOptimizer optimizer;
    const econ::OptimizerResult opt = optimizer.optimize(snap, costs);
    if (!opt.feasible) continue;

    const game::GameConfig galplus{snap,
                                   costs,
                                   game::SchemeKind::RoleBased,
                                   opt.min_bi,
                                   opt.split,
                                   sync_set,
                                   0.685};
    const game::AlgorandGame game_plus(galplus);
    if (game::verify_theorem3(game_plus).holds) ++thm3_ok;

    game::GameConfig starved = galplus;
    starved.bi = opt.min_bi * 0.2;
    const game::AlgorandGame game_starved(starved);
    if (!game::verify_theorem3(game_starved).holds) ++thm3_below_fails;

    // Best-response dynamics from the Theorem-3 profile: must be a
    // fixpoint under the optimizer's B_i.
    const game::Profile start = game::theorem3_profile(game_plus);
    const game::DynamicsResult dyn =
        game::best_response_dynamics(game_plus, start, 10);
    if (dyn.converged && dyn.total_moves == 0) ++brd_fixpoint;
  }

  std::printf("%-58s %zu/%zu\n", "Lemma 1 (Offline dominated by Defect):",
              lemma1_ok, games);
  std::printf("%-58s %zu/%zu\n", "Theorem 1 (All-D is a NE of G_Al):",
              thm1_ok, games);
  std::printf("%-58s %zu/%zu\n", "Theorem 2 (All-C is NOT a NE of G_Al):",
              thm2_ok, games);
  std::printf("%-58s %zu/%zu\n",
              "Theorem 3 (profile is NE at Algorithm-1 B_i):", thm3_ok,
              games);
  std::printf("%-58s %zu/%zu\n",
              "Theorem 3 fails when B_i starved to 20%:", thm3_below_fails,
              games);
  std::printf("%-58s %zu/%zu\n",
              "Theorem-3 profile is a best-response fixpoint:", brd_fixpoint,
              games);
  return 0;
}
