#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/require.hpp"

namespace roleshare::util::json {

namespace {

[[noreturn]] void kind_error(const char* wanted, Value::Kind got) {
  throw std::invalid_argument(std::string("JSON value is not ") + wanted +
                              " (kind " +
                              std::to_string(static_cast<int>(got)) + ")");
}

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("a bool", kind_);
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::Number) kind_error("a number", kind_);
  return num_;
}

std::size_t Value::as_size() const {
  const double v = as_number();
  RS_REQUIRE(v >= 0.0 && std::floor(v) == v,
             "JSON number is not a non-negative integer");
  return static_cast<std::size_t>(v);
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_error("a string", kind_);
  return str_;
}

const Value::Array& Value::as_array() const {
  if (kind_ != Kind::Array) kind_error("an array", kind_);
  return arr_;
}

const Value::Object& Value::as_object() const {
  if (kind_ != Kind::Object) kind_error("an object", kind_);
  return obj_;
}

void Value::push_back(Value v) {
  if (kind_ != Kind::Array) kind_error("an array", kind_);
  arr_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  if (kind_ != Kind::Object) kind_error("an object", kind_);
  obj_.emplace_back(std::move(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::Object) kind_error("an object", kind_);
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr)
    throw std::invalid_argument("JSON object has no member \"" +
                                std::string(key) + "\"");
  return *v;
}

void Value::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number:
      if (!std::isfinite(num_)) {
        out += "null";  // JSON has no NaN/Infinity literal
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", num_);
        out += buf;
      }
      break;
    case Kind::String:
      append_escaped(out, str_);
      break;
    case Kind::Array:
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out += ',';
        arr_[i].dump_to(out);
      }
      out += ']';
      break;
    case Kind::Object:
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i > 0) out += ',';
        append_escaped(out, obj_[i].first);
        out += ':';
        obj_[i].second.dump_to(out);
      }
      out += '}';
      break;
  }
}

std::string Value::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  /// Containers may nest at most this deep. Recursive-descent parsing
  /// consumes stack per level, so untrusted input like "[[[[..." must be
  /// rejected before it overflows the stack; partial files nest a small
  /// constant number of levels.
  static constexpr std::size_t kMaxDepth = 192;
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return Value(parse_string());
    if (consume_literal("null")) return Value();
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    return parse_number();
  }

  Value parse_object() {
    expect('{');
    enter_container();
    Value obj = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      // Duplicate keys silently shadow each other in at()/find(); a
      // partial file carrying one is corrupt, not ambiguous.
      if (obj.find(key) != nullptr)
        fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      --depth_;
      return obj;
    }
  }

  Value parse_array() {
    expect('[');
    enter_container();
    Value arr = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      --depth_;
      return arr;
    }
  }

  void enter_container() {
    if (++depth_ > kMaxDepth)
      fail("containers nested deeper than " + std::to_string(kMaxDepth) +
           " levels");
  }

  /// Four hex digits of a \uXXXX escape (the code-unit primitive the
  /// surrogate-pair logic combines).
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f')
        code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F')
        code |= static_cast<unsigned>(h - 'A' + 10);
      else
        fail("bad \\u escape digit");
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Full RFC 8259 \uXXXX decoding: BMP code points directly,
          // supplementary-plane ones as a high+low surrogate pair. Lone
          // or misordered surrogates are corrupt input and fail with the
          // byte offset, never a silent replacement character.
          const unsigned first = parse_hex4();
          unsigned code = first;
          if (first >= 0xDC00 && first <= 0xDFFF)
            fail("lone low surrogate \\u escape");
          if (first >= 0xD800 && first <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u')
              fail("high surrogate \\u escape not followed by \\uXXXX");
            pos_ += 2;
            const unsigned second = parse_hex4();
            if (second < 0xDC00 || second > 0xDFFF)
              fail("high surrogate \\u escape not followed by a low "
                   "surrogate");
            code = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return Value(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace roleshare::util::json
