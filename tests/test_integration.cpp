// End-to-end integration: consensus rounds feeding reward schemes out of
// the Foundation pool, credited to accounts; plus game-theoretic
// verification on snapshots produced by the live simulator.
#include <gtest/gtest.h>

#include "econ/foundation_schedule.hpp"
#include "econ/reward_pool.hpp"
#include "econ/role_based.hpp"
#include "econ/stake_proportional.hpp"
#include "game/equilibrium.hpp"
#include "sim/round_engine.hpp"

namespace roleshare {
namespace {

sim::NetworkConfig net_config(double defection, std::uint64_t seed) {
  sim::NetworkConfig config;
  config.node_count = 100;
  config.seed = seed;
  config.defection_rate = defection;
  return config;
}

TEST(Integration, RoundsPlusStakeProportionalRewardsConserveMoney) {
  sim::Network net(net_config(0.0, 101));
  sim::RoundEngine engine(
      net, consensus::ConsensusParams::scaled_for(net.accounts().total_stake()));
  econ::FoundationPool pool;
  econ::StakeProportionalScheme scheme;

  ledger::MicroAlgos credited_total = 0;
  for (int r = 1; r <= 5; ++r) {
    const sim::RoundResult result = engine.run_round();
    ASSERT_TRUE(result.roles.has_value());
    // Fig-2 flow: inject R_i, withdraw B_i = R_i, distribute by stake.
    const auto ri = econ::FoundationSchedule::reward_for_round(result.round);
    pool.inject(ri);
    const auto bi = pool.withdraw(scheme.required_budget(result.round,
                                                         *result.roles));
    const econ::Payouts payouts =
        scheme.distribute(result.round, *result.roles, bi);
    for (std::size_t v = 0; v < payouts.amounts.size(); ++v) {
      net.accounts().credit(static_cast<ledger::NodeId>(v),
                            payouts.amounts[v]);
      credited_total += payouts.amounts[v];
    }
    // Dust from integer division stays in the pool.
    EXPECT_EQ(pool.emitted(), pool.balance() + pool.disbursed());
  }
  EXPECT_GT(credited_total, 0);
  EXPECT_LE(pool.disbursed(), pool.emitted());
  // Everyone online received something (stake-proportional, role-blind).
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    EXPECT_GT(net.accounts().balance(static_cast<ledger::NodeId>(v)),
              ledger::algos(net.accounts().stake(static_cast<ledger::NodeId>(v))) -
                  ledger::kMicroPerAlgo);
  }
}

TEST(Integration, RoleBasedSchemeDistributesMuchLessThanFoundation) {
  sim::Network net(net_config(0.0, 202));
  sim::RoundEngine engine(
      net, consensus::ConsensusParams::scaled_for(net.accounts().total_stake()));
  econ::RoleBasedScheme ours((econ::CostModel()));
  econ::StakeProportionalScheme foundation;

  ledger::MicroAlgos ours_total = 0, foundation_total = 0;
  for (int r = 1; r <= 5; ++r) {
    const sim::RoundResult result = engine.run_round();
    ASSERT_TRUE(result.roles.has_value());
    ours_total += ours.required_budget(result.round, *result.roles);
    foundation_total += foundation.required_budget(result.round,
                                                   *result.roles);
  }
  EXPECT_GT(ours_total, 0);
  // The Fig-7 headline: our adaptive reward is far below the 20-Algo
  // schedule at this (small) network scale.
  EXPECT_LT(ours_total, foundation_total / 10);
}

TEST(Integration, ObservedSnapshotSupportsTheorem3Equilibrium) {
  // Take a real round's observed roles, compute the minimal B_i via the
  // adaptive scheme, build the game, and verify the Theorem-3 profile is a
  // Nash equilibrium under that exact B_i.
  sim::Network net(net_config(0.0, 303));
  sim::RoundEngine engine(
      net, consensus::ConsensusParams::scaled_for(net.accounts().total_stake()));
  const sim::RoundResult result = engine.run_round();
  ASSERT_TRUE(result.roles.has_value());
  const econ::RoleSnapshot& snap = *result.roles;
  ASSERT_GT(snap.count(consensus::Role::Leader), 0u);
  ASSERT_GT(snap.count(consensus::Role::Committee), 0u);

  econ::RoleBasedScheme scheme((econ::CostModel()));
  const ledger::MicroAlgos bi = scheme.required_budget(1, snap);
  ASSERT_TRUE(scheme.last_feasible());
  ASSERT_GT(bi, 0);

  // Strong-synchrony set: every Other node (conservative worst case for
  // the bound — s*_k is the global Other minimum, which the optimizer
  // used too).
  std::vector<bool> sync_set(snap.node_count(), false);
  for (std::size_t v = 0; v < snap.node_count(); ++v)
    if (snap.role(static_cast<ledger::NodeId>(v)) == consensus::Role::Other &&
        snap.stake(static_cast<ledger::NodeId>(v)) > 0)
      sync_set[v] = true;

  const game::AlgorandGame g(game::GameConfig{
      snap, econ::CostModel{}, game::SchemeKind::RoleBased,
      static_cast<double>(bi), scheme.last_split(), sync_set, 0.685});
  const game::TheoremReport report = game::verify_theorem3(g);
  EXPECT_TRUE(report.holds) << report.detail;
}

TEST(Integration, DefectionReducesDistributedRewards) {
  // Under the role-based scheme, fewer observed roles (hidden defectors)
  // change the snapshot; the scheme still produces a feasible reward when
  // at least one leader and committee member cooperated.
  sim::Network healthy(net_config(0.0, 404));
  sim::Network degraded(net_config(0.3, 404));
  sim::RoundEngine e1(healthy, consensus::ConsensusParams::scaled_for(
                                   healthy.accounts().total_stake()));
  sim::RoundEngine e2(degraded, consensus::ConsensusParams::scaled_for(
                                    degraded.accounts().total_stake()));
  const sim::RoundResult r1 = e1.run_round();
  const sim::RoundResult r2 = e2.run_round();
  ASSERT_TRUE(r1.roles.has_value());
  ASSERT_TRUE(r2.roles.has_value());
  EXPECT_GE(r1.roles->count(consensus::Role::Committee),
            r2.roles->count(consensus::Role::Committee));
}

TEST(Integration, FullPipelineDeterminism) {
  auto run_once = [](std::uint64_t seed) {
    sim::Network net(net_config(0.1, seed));
    sim::RoundEngine engine(net, consensus::ConsensusParams::scaled_for(
                                     net.accounts().total_stake()));
    econ::RoleBasedScheme scheme((econ::CostModel()));
    ledger::MicroAlgos total = 0;
    for (int r = 1; r <= 3; ++r) {
      const sim::RoundResult result = engine.run_round();
      if (result.roles)
        total += scheme.required_budget(result.round, *result.roles);
    }
    return total;
  };
  EXPECT_EQ(run_once(777), run_once(777));
  EXPECT_NE(run_once(777), run_once(778));
}

}  // namespace
}  // namespace roleshare
