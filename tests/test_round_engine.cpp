#include "sim/round_engine.hpp"

#include <gtest/gtest.h>

namespace roleshare::sim {
namespace {

NetworkConfig config_with(double defection_rate, std::size_t nodes = 120,
                          std::uint64_t seed = 21) {
  NetworkConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.defection_rate = defection_rate;
  return config;
}

consensus::ConsensusParams params_for(const Network& net) {
  return consensus::ConsensusParams::scaled_for(net.accounts().total_stake());
}

TEST(RoundEngine, FullCooperationReachesFinalConsensus) {
  Network net(config_with(0.0));
  RoundEngine engine(net, params_for(net));
  const RoundResult result = engine.run_round();
  EXPECT_EQ(result.round, 1u);
  // Under strong synchrony with zero defection, the overwhelming majority
  // extracts a final block.
  EXPECT_GT(result.final_fraction, 0.9);
  EXPECT_LT(result.none_fraction, 0.05);
  EXPECT_GT(result.proposals, 0u);
  EXPECT_TRUE(result.non_empty_block);
}

TEST(RoundEngine, ChainAdvancesEachRound) {
  Network net(config_with(0.0));
  RoundEngine engine(net, params_for(net));
  for (int r = 1; r <= 5; ++r) {
    const RoundResult result = engine.run_round();
    EXPECT_EQ(result.round, static_cast<ledger::Round>(r));
    EXPECT_EQ(net.chain().height(), static_cast<std::size_t>(r) + 1);
  }
}

TEST(RoundEngine, OutcomesVectorSized) {
  Network net(config_with(0.0, 80));
  RoundEngine engine(net, params_for(net));
  const RoundResult result = engine.run_round();
  EXPECT_EQ(result.outcomes.size(), 80u);
  EXPECT_NEAR(result.final_fraction + result.tentative_fraction +
                  result.none_fraction,
              1.0, 1e-9);
}

TEST(RoundEngine, HeavyDefectionDegradesConsensus) {
  Network low(config_with(0.0, 120, 33));
  RoundEngine engine_low(low, params_for(low));
  Network high(config_with(0.45, 120, 33));
  RoundEngine engine_high(high, params_for(high));

  double final_low = 0, final_high = 0;
  for (int r = 0; r < 4; ++r) {
    final_low += engine_low.run_round().final_fraction;
    final_high += engine_high.run_round().final_fraction;
  }
  EXPECT_LT(final_high, final_low);
}

TEST(RoundEngine, OfflineNodesAlwaysNoBlock) {
  NetworkConfig config = config_with(0.0);
  config.faulty_rate = 0.1;
  Network net(config);
  RoundEngine engine(net, params_for(net));
  const RoundResult result = engine.run_round();
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    if (net.behavior(static_cast<ledger::NodeId>(v)) ==
        BehaviorType::Faulty) {
      EXPECT_EQ(result.outcomes[v], NodeOutcome::NoBlock);
    }
  }
}

TEST(RoundEngine, RoleSnapshotMarksObservedRoles) {
  Network net(config_with(0.0));
  RoundEngine engine(net, params_for(net));
  const RoundResult result = engine.run_round();
  ASSERT_TRUE(result.roles.has_value());
  const econ::RoleSnapshot& roles = *result.roles;
  EXPECT_EQ(roles.node_count(), net.node_count());
  // With everyone cooperating, some leaders and committee were observed.
  EXPECT_GT(roles.count(consensus::Role::Leader), 0u);
  EXPECT_GT(roles.count(consensus::Role::Committee), 0u);
  EXPECT_GT(roles.count(consensus::Role::Other), 0u);
}

TEST(RoundEngine, DefectorsHideTheirRoles) {
  // With full defection nothing is observed: every node appears as Other.
  Network net(config_with(1.0));
  RoundEngine engine(net, params_for(net));
  const RoundResult result = engine.run_round();
  ASSERT_TRUE(result.roles.has_value());
  EXPECT_EQ(result.roles->count(consensus::Role::Leader), 0u);
  EXPECT_EQ(result.roles->count(consensus::Role::Committee), 0u);
  EXPECT_EQ(result.final_fraction, 0.0);
  EXPECT_EQ(result.proposals, 0u);
  EXPECT_FALSE(result.non_empty_block);
  // Chain still advances (empty block) so seeds keep evolving.
  EXPECT_EQ(net.chain().height(), 2u);
}

TEST(RoundEngine, SafetyNoTwoNodesFinalizeDifferentBlocks) {
  // Across several rounds and defection levels, all nodes that concluded a
  // block concluded the same one — checked indirectly: at most one
  // non-empty block is appended per round, and final fractions plus
  // the appended block are consistent. Direct pairwise check:
  for (const double rate : {0.0, 0.2}) {
    Network net(config_with(rate, 100, 55));
    RoundEngine engine(net, params_for(net));
    for (int r = 0; r < 3; ++r) {
      const RoundResult result = engine.run_round();
      // If any node reached Final, the canonical chain must have advanced
      // with a block every Final node agrees on. Since outcomes only record
      // categories, we assert consistency: Final nodes exist only when a
      // block was appended.
      bool any_final = false;
      for (const NodeOutcome o : result.outcomes)
        any_final = any_final || o == NodeOutcome::Final;
      if (any_final) {
        EXPECT_TRUE(net.chain().height() == static_cast<std::size_t>(r) + 2);
      }
    }
  }
}

TEST(RoundEngine, DeterministicGivenSeed) {
  Network a(config_with(0.15, 100, 77));
  Network b(config_with(0.15, 100, 77));
  RoundEngine ea(a, params_for(a));
  RoundEngine eb(b, params_for(b));
  for (int r = 0; r < 3; ++r) {
    const RoundResult ra = ea.run_round();
    const RoundResult rb = eb.run_round();
    EXPECT_EQ(ra.final_fraction, rb.final_fraction);
    EXPECT_EQ(ra.tentative_fraction, rb.tentative_fraction);
    EXPECT_EQ(ra.proposals, rb.proposals);
  }
  EXPECT_EQ(a.chain().tip().hash(), b.chain().tip().hash());
}

/// Full-equality check between a fresh-run result and one produced via a
/// reused workspace: every field, including the role snapshots.
void expect_results_equal(const RoundResult& a, const RoundResult& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.live_count, b.live_count);
  EXPECT_EQ(a.final_fraction, b.final_fraction);
  EXPECT_EQ(a.tentative_fraction, b.tentative_fraction);
  EXPECT_EQ(a.none_fraction, b.none_fraction);
  EXPECT_EQ(a.non_empty_block, b.non_empty_block);
  EXPECT_EQ(a.proposals, b.proposals);
  EXPECT_EQ(a.synchrony, b.synchrony);
  ASSERT_EQ(a.roles.has_value(), b.roles.has_value());
  ASSERT_EQ(a.roles_true.has_value(), b.roles_true.has_value());
  if (a.roles) {
    EXPECT_EQ(a.roles->roles(), b.roles->roles());
    EXPECT_EQ(a.roles->stakes(), b.roles->stakes());
  }
  if (a.roles_true) {
    EXPECT_EQ(a.roles_true->roles(), b.roles_true->roles());
    EXPECT_EQ(a.roles_true->stakes(), b.roles_true->stakes());
  }
}

TEST(RoundEngine, ReusedWorkspaceMatchesFreshRuns) {
  // Reference: each config simulated with the allocating entry point.
  const NetworkConfig config_a = config_with(0.1, 90, 55);
  NetworkConfig config_b = config_with(0.3, 60, 56);
  config_b.faulty_rate = 0.1;
  std::vector<RoundResult> fresh_a, fresh_b;
  {
    Network net(config_a);
    RoundEngine engine(net, params_for(net));
    for (int r = 0; r < 3; ++r) fresh_a.push_back(engine.run_round());
  }
  {
    Network net(config_b);
    RoundEngine engine(net, params_for(net));
    for (int r = 0; r < 3; ++r) fresh_b.push_back(engine.run_round());
  }

  // One workspace and one result object threaded dirty through BOTH
  // configs, interleaved: contents left over from a differently-sized
  // simulation must not leak into the next round's output.
  RoundWorkspace ws;
  RoundResult result;
  Network net_a(config_a);
  Network net_b(config_b);
  RoundEngine engine_a(net_a, params_for(net_a));
  RoundEngine engine_b(net_b, params_for(net_b));
  for (int r = 0; r < 3; ++r) {
    engine_a.run_round_into(result, ws);
    expect_results_equal(result, fresh_a[static_cast<std::size_t>(r)]);
    engine_b.run_round_into(result, ws);
    expect_results_equal(result, fresh_b[static_cast<std::size_t>(r)]);
  }
}

TEST(RoundEngine, WorkspaceOverloadMatchesAllocatingRunRound) {
  Network a(config_with(0.2, 80, 63));
  Network b(config_with(0.2, 80, 63));
  RoundEngine ea(a, params_for(a));
  RoundEngine eb(b, params_for(b));
  RoundWorkspace ws;
  for (int r = 0; r < 2; ++r) {
    const RoundResult with_ws = ea.run_round(ws);
    const RoundResult fresh = eb.run_round();
    expect_results_equal(with_ws, fresh);
  }
  EXPECT_GT(ws.capacity_bytes(), 0u);
}

TEST(RoundEngine, DegradedSynchronyHurtsOutcomes) {
  NetworkConfig config = config_with(0.0, 100, 91);
  config.synchrony.degrade_probability = 1.0;  // always degraded
  config.synchrony.degraded_delay_factor = 200.0;
  config.synchrony.max_degraded_rounds = 1000;
  Network degraded(config);
  RoundEngine engine(degraded, params_for(degraded));
  const RoundResult result = engine.run_round();
  EXPECT_EQ(result.synchrony, net::SynchronyState::Degraded);
  // With delays blown up 200x, vote deadlines are missed network-wide.
  EXPECT_LT(result.final_fraction, 0.5);
}

}  // namespace
}  // namespace roleshare::sim
