// Cross-module property sweeps (parameterized gtest): invariants that must
// hold across randomized populations, profiles, budgets and defection
// levels — the library-wide contracts DESIGN.md §5 lists.
#include <gtest/gtest.h>

#include "econ/optimizer.hpp"
#include "econ/role_based.hpp"
#include "econ/stake_proportional.hpp"
#include "game/equilibrium.hpp"
#include "game/welfare.hpp"
#include "sim/round_engine.hpp"
#include "util/distributions.hpp"

namespace roleshare {
namespace {

using consensus::Role;

econ::RoleSnapshot random_snapshot(util::Rng& rng, std::size_t n) {
  std::vector<Role> roles(n, Role::Other);
  std::vector<std::int64_t> stakes(n);
  const util::UniformStake dist(1, 100);
  for (auto& s : stakes) s = dist.sample(rng);
  const std::size_t leaders =
      1 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  const std::size_t committee =
      3 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  const auto picks = rng.sample_without_replacement(n, leaders + committee);
  for (std::size_t i = 0; i < picks.size(); ++i)
    roles[picks[i]] = i < leaders ? Role::Leader : Role::Committee;
  return econ::RoleSnapshot(std::move(roles), std::move(stakes));
}

// ---------------------------------------------------------------------
// Property: for every scheme and random population/budget, payouts are
// non-negative, sum to <= budget, and only stake-holders are paid.
class PayoutConservation : public ::testing::TestWithParam<int> {};

TEST_P(PayoutConservation, HoldsOnRandomPopulations) {
  util::Rng rng(9000 + GetParam());
  const econ::RoleSnapshot snap = random_snapshot(rng, 40);
  const ledger::MicroAlgos budget = rng.uniform_int(0, 50'000'000);

  econ::StakeProportionalScheme stake_prop;
  econ::RoleBasedScheme role_based{econ::CostModel{}};
  role_based.required_budget(1, snap);  // fix the split for distribute()

  for (econ::RewardScheme* scheme :
       std::initializer_list<econ::RewardScheme*>{&stake_prop, &role_based}) {
    const econ::Payouts p = scheme->distribute(1, snap, budget);
    ledger::MicroAlgos sum = 0;
    for (std::size_t v = 0; v < p.amounts.size(); ++v) {
      ASSERT_GE(p.amounts[v], 0) << scheme->name();
      if (snap.stake(static_cast<ledger::NodeId>(v)) == 0) {
        ASSERT_EQ(p.amounts[v], 0) << scheme->name();
      }
      sum += p.amounts[v];
    }
    ASSERT_EQ(sum, p.total) << scheme->name();
    ASSERT_LE(sum, budget) << scheme->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PayoutConservation, ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Property: the closed-form optimizer's output always satisfies its own
// Theorem-3 bounds with strict feasibility, across random populations.
class OptimizerSelfConsistency : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerSelfConsistency, ResultClearsItsOwnBounds) {
  util::Rng rng(9100 + GetParam());
  const econ::RoleSnapshot snap = random_snapshot(rng, 60);
  const econ::RewardOptimizer opt;
  const econ::OptimizerResult r = opt.optimize(snap, econ::CostModel{});
  ASSERT_TRUE(r.feasible);
  const econ::BiBounds check = econ::compute_bi_bounds(
      r.split, econ::BoundInputs::from_snapshot(snap), econ::CostModel{});
  ASSERT_TRUE(check.feasible);
  EXPECT_GE(r.min_bi, check.required());
  EXPECT_LE(r.min_bi, check.required() * 1.001);
  // Every share strictly positive.
  EXPECT_GT(r.split.alpha, 0.0);
  EXPECT_GT(r.split.beta, 0.0);
  EXPECT_GT(r.split.gamma(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OptimizerSelfConsistency,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Property: at the optimizer's B_i, the Theorem-3 profile (Y = all
// Others) is a Nash equilibrium; welfare accounting balances
// (welfare = expenditure - cost) on every profile checked.
class EquilibriumAtOptimum : public ::testing::TestWithParam<int> {};

TEST_P(EquilibriumAtOptimum, HoldsOnRandomPopulations) {
  util::Rng rng(9200 + GetParam());
  const econ::RoleSnapshot snap = random_snapshot(rng, 50);
  const econ::RewardOptimizer opt;
  const econ::OptimizerResult r = opt.optimize(snap, econ::CostModel{});
  ASSERT_TRUE(r.feasible);

  std::vector<bool> sync_set(snap.node_count(), false);
  for (std::size_t v = 0; v < snap.node_count(); ++v)
    if (snap.role(static_cast<ledger::NodeId>(v)) == Role::Other)
      sync_set[v] = true;

  const game::AlgorandGame g(game::GameConfig{
      snap, econ::CostModel{}, game::SchemeKind::RoleBased, r.min_bi,
      r.split, sync_set, 0.685});
  EXPECT_TRUE(game::verify_theorem3(g).holds);

  const game::Profile profile = game::theorem3_profile(g);
  const game::ProfileMetrics m = game::analyze_profile(g, profile);
  EXPECT_NEAR(m.social_welfare, m.designer_expenditure - m.total_cost,
              1e-6);
  EXPECT_TRUE(m.block_created);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquilibriumAtOptimum,
                         ::testing::Range(0, 10));

// ---------------------------------------------------------------------
// Property: one full consensus round maintains its invariants at any
// defection level — outcome fractions partition the network, the chain
// grows by exactly one hash-linked block, and offline nodes never extract
// anything.
class RoundInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RoundInvariants, HoldAcrossDefectionLevels) {
  const double rate = 0.1 * GetParam();
  sim::NetworkConfig config;
  config.node_count = 90;
  config.seed = 9300 + GetParam();
  config.defection_rate = rate * 0.9;  // leave room for faulty nodes
  config.faulty_rate = 0.05;
  sim::Network net(config);
  sim::RoundEngine engine(net, consensus::ConsensusParams::scaled_for(
                                   net.accounts().total_stake()));
  const crypto::Hash256 tip_before = net.chain().tip().hash();
  const sim::RoundResult result = engine.run_round();

  EXPECT_NEAR(result.final_fraction + result.tentative_fraction +
                  result.none_fraction,
              1.0, 1e-9);
  EXPECT_EQ(net.chain().height(), 2u);
  EXPECT_EQ(net.chain().tip().prev_hash(), tip_before);
  ASSERT_TRUE(result.roles.has_value());
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    const auto id = static_cast<ledger::NodeId>(v);
    if (net.behavior(id) == sim::BehaviorType::Faulty) {
      EXPECT_EQ(result.outcomes[v], sim::NodeOutcome::NoBlock);
      EXPECT_EQ(result.roles->stake(id), 0);  // never rewarded
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RoundInvariants, ::testing::Range(0, 8));

// ---------------------------------------------------------------------
// Property: equilibrium checks agree with brute force on tiny games —
// the O(1) deviation scanner against freshly recomputed payoffs.
class ScannerAgreesWithBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(ScannerAgreesWithBruteForce, OnRandomProfiles) {
  util::Rng rng(9400 + GetParam());
  const econ::RoleSnapshot snap = random_snapshot(rng, 12);
  const game::GameConfig config{
      snap,
      econ::CostModel{},
      GetParam() % 2 == 0 ? game::SchemeKind::StakeProportional
                          : game::SchemeKind::RoleBased,
      1e7 * rng.uniform01(),
      econ::RewardSplit(0.1 + 0.3 * rng.uniform01(),
                        0.1 + 0.3 * rng.uniform01()),
      {},
      0.685};
  const game::AlgorandGame g(config);

  for (int trial = 0; trial < 8; ++trial) {
    game::Profile profile(g.player_count());
    for (auto& s : profile) {
      const auto pick = rng.uniform_int(0, 2);
      s = pick == 0 ? game::Strategy::Cooperate
                    : (pick == 1 ? game::Strategy::Defect
                                 : game::Strategy::Offline);
    }
    const game::DeviationScanner scanner(g, profile);
    for (ledger::NodeId v = 0; v < g.player_count(); ++v) {
      ASSERT_NEAR(scanner.base_payoff(v), g.payoff(profile, v), 1e-9);
      for (const game::Strategy alt :
           {game::Strategy::Cooperate, game::Strategy::Defect,
            game::Strategy::Offline}) {
        game::Profile deviated = profile;
        deviated[v] = alt;
        ASSERT_NEAR(scanner.deviation_payoff(v, alt),
                    g.payoff(deviated, v), 1e-9)
            << "player " << v;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScannerAgreesWithBruteForce,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace roleshare
