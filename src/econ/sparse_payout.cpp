#include "econ/sparse_payout.hpp"

#include <cmath>

#include "util/require.hpp"

namespace roleshare::econ {

SparsePayoutTotals distribute_touched(const RewardSplit& split,
                                      ledger::MicroAlgos budget,
                                      std::span<const consensus::Role> roles,
                                      std::span<const std::int64_t> stakes,
                                      std::int64_t online_stake,
                                      std::span<ledger::MicroAlgos> amounts) {
  RS_REQUIRE(budget >= 0, "budget must be non-negative");
  RS_REQUIRE(roles.size() == stakes.size() && roles.size() == amounts.size(),
             "touched spans must be parallel");
  SparsePayoutTotals out;
  for (std::size_t i = 0; i < roles.size(); ++i) {
    amounts[i] = 0;
    if (roles[i] == consensus::Role::Leader) out.leader_stake += stakes[i];
    if (roles[i] == consensus::Role::Committee)
      out.committee_stake += stakes[i];
  }
  out.other_stake = online_stake - out.leader_stake - out.committee_stake;
  RS_REQUIRE(out.other_stake >= 0,
             "touched role stakes exceed the online stake");
  if (budget == 0) return out;

  // Digit-for-digit the arithmetic of RoleBasedScheme::distribute: double
  // share, floor to µAlgos. Any deviation here would make compounded
  // sparse economies drift from the dense scheme.
  const double b = static_cast<double>(budget);
  for (std::size_t i = 0; i < roles.size(); ++i) {
    const double stake = static_cast<double>(stakes[i]);
    double share = 0.0;
    switch (roles[i]) {
      case consensus::Role::Leader:
        if (out.leader_stake > 0)
          share = split.alpha * b * stake /
                  static_cast<double>(out.leader_stake);
        break;
      case consensus::Role::Committee:
        if (out.committee_stake > 0)
          share = split.beta * b * stake /
                  static_cast<double>(out.committee_stake);
        break;
      case consensus::Role::Other:
        break;  // the γ pot is reported below, not individually paid
    }
    const auto amount = static_cast<ledger::MicroAlgos>(std::floor(share));
    amounts[i] = amount;
    out.paid += amount;
  }
  out.others_pot = out.other_stake > 0
                       ? static_cast<ledger::MicroAlgos>(
                             std::floor(split.gamma() * b))
                       : 0;
  RS_ENSURE(out.paid <= budget, "disbursed more than the budget");
  return out;
}

}  // namespace roleshare::econ
