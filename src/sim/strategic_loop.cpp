#include "sim/strategic_loop.hpp"

#include "econ/foundation_schedule.hpp"
#include "econ/optimizer.hpp"
#include "econ/role_based.hpp"
#include "econ/stake_proportional.hpp"
#include "game/best_response.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

StrategicLoopResult run_strategic_loop(const StrategicLoopConfig& config) {
  RS_REQUIRE(config.rounds > 0, "at least one round");
  Network net(config.network);
  RoundEngine engine(net, consensus::ConsensusParams::scaled_for(
                              net.accounts().total_stake()));

  econ::StakeProportionalScheme foundation;
  econ::RoleBasedScheme role_based(config.costs);

  game::Profile profile(net.node_count(), config.initial);
  StrategicLoopResult result;

  for (std::size_t t = 0; t < config.rounds; ++t) {
    net.set_strategies(profile);
    const RoundResult round = engine.run_round();

    StrategicRoundStats stats;
    stats.round = round.round;
    stats.final_fraction = round.final_fraction;
    stats.non_empty_block = round.non_empty_block;
    std::size_t coop = 0;
    for (const game::Strategy s : profile)
      if (s == game::Strategy::Cooperate) ++coop;
    stats.cooperation_fraction =
        static_cast<double>(coop) / static_cast<double>(profile.size());

    // Rewards for this round, and the induced one-round game. Nodes know
    // their *true* roles when reasoning about deviations.
    const econ::RoleSnapshot& snap = *round.roles_true;
    game::GameConfig game_config{snap,
                                 config.costs,
                                 game::SchemeKind::StakeProportional,
                                 0.0,
                                 econ::RewardSplit(0.02, 0.03),
                                 {},
                                 0.685};

    if (config.scheme == SchemeChoice::FoundationStakeProportional) {
      game_config.bi = static_cast<double>(
          foundation.required_budget(round.round, snap));
      stats.bi_algos = round.non_empty_block
                           ? ledger::to_algos(static_cast<ledger::MicroAlgos>(
                                 game_config.bi))
                           : 0.0;
    } else {
      game_config.scheme = game::SchemeKind::RoleBased;
      const ledger::MicroAlgos bi =
          role_based.required_budget(round.round, snap);
      game_config.bi = static_cast<double>(bi);
      game_config.split = role_based.last_split();
      // Liveness set Y: every online Other is needed to relay — the
      // conservative assumption the Theorem-3 bounds were derived under.
      game_config.sync_set.assign(snap.node_count(), false);
      for (std::size_t v = 0; v < snap.node_count(); ++v) {
        if (snap.role(static_cast<ledger::NodeId>(v)) ==
                consensus::Role::Other &&
            snap.stake(static_cast<ledger::NodeId>(v)) > 0)
          game_config.sync_set[v] = true;
      }
      stats.bi_algos =
          round.non_empty_block ? ledger::to_algos(bi) : 0.0;
    }
    result.total_reward_algos += stats.bi_algos;
    result.rounds.push_back(stats);

    // Myopic best responses for the next round (one sweep).
    const game::AlgorandGame game(game_config);
    game::Profile next = profile;
    for (std::size_t v = 0; v < profile.size(); ++v) {
      next[v] = game::best_response(game, profile,
                                    static_cast<ledger::NodeId>(v));
    }
    profile = std::move(next);
  }

  std::size_t coop = 0;
  for (const game::Strategy s : profile)
    if (s == game::Strategy::Cooperate) ++coop;
  result.final_cooperation =
      static_cast<double>(coop) / static_cast<double>(profile.size());
  return result;
}

}  // namespace roleshare::sim
