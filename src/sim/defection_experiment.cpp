#include "sim/defection_experiment.hpp"

#include "sim/round_engine.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

DefectionSeries run_defection_experiment(
    const DefectionExperimentConfig& config) {
  RS_REQUIRE(config.runs > 0, "at least one run");
  RS_REQUIRE(config.rounds > 0, "at least one round");

  OutcomeMetrics metrics(config.rounds);
  std::size_t runs_with_progress = 0;

  for (std::size_t run = 0; run < config.runs; ++run) {
    NetworkConfig net_config = config.network;
    net_config.seed = config.network.seed + 0x9e3779b9ULL * (run + 1);
    Network network(net_config);

    consensus::ConsensusParams params = config.params;
    if (config.scale_params_to_stake) {
      params = consensus::ConsensusParams::scaled_for(
          network.accounts().total_stake());
      params.step_threshold = config.params.step_threshold;
      params.final_threshold = config.params.final_threshold;
      params.max_binary_iterations = config.params.max_binary_iterations;
      params.proposal_timeout_ms = config.params.proposal_timeout_ms;
      params.step_timeout_ms = config.params.step_timeout_ms;
    }

    RoundEngine engine(network, params);
    bool progress = false;
    for (std::size_t r = 0; r < config.rounds; ++r) {
      const RoundResult result = engine.run_round();
      metrics.record(r, result);
      progress = progress || result.non_empty_block;
    }
    if (progress) ++runs_with_progress;
  }

  DefectionSeries series;
  series.rounds = metrics.aggregate(config.trim_fraction);
  series.runs_with_progress = static_cast<double>(runs_with_progress) /
                              static_cast<double>(config.runs);
  return series;
}

}  // namespace roleshare::sim
