#include "ledger/codec.hpp"

#include "util/require.hpp"

namespace roleshare::ledger {

namespace {

// One cap protects against length-prefix bombs in every context: nothing
// we serialize legitimately exceeds this.
constexpr std::size_t kMaxSequence = 1 << 20;

constexpr std::uint8_t kTagTransaction = 0x01;
constexpr std::uint8_t kTagBlock = 0x02;
constexpr std::uint8_t kBlockEmpty = 0x00;
constexpr std::uint8_t kBlockFull = 0x01;

}  // namespace

void Encoder::put_u8(std::uint8_t v) { buffer_.push_back(v); }

void Encoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_i64(std::int64_t v) {
  put_u64(static_cast<std::uint64_t>(v));
}

void Encoder::put_hash(const crypto::Hash256& h) {
  buffer_.insert(buffer_.end(), h.bytes().begin(), h.bytes().end());
}

void Encoder::put_bytes(std::span<const std::uint8_t> data) {
  put_u32(static_cast<std::uint32_t>(data.size()));
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Decoder::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("truncated input");
}

std::uint8_t Decoder::get_u8() {
  need(1);
  return data_[offset_++];
}

std::uint32_t Decoder::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[offset_++]) << (8 * i);
  return v;
}

std::uint64_t Decoder::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[offset_++]) << (8 * i);
  return v;
}

std::int64_t Decoder::get_i64() {
  return static_cast<std::int64_t>(get_u64());
}

crypto::Hash256 Decoder::get_hash() {
  need(32);
  crypto::Digest digest;
  for (auto& b : digest) b = data_[offset_++];
  return crypto::Hash256(digest);
}

std::vector<std::uint8_t> Decoder::get_bytes() {
  const std::uint32_t len = get_u32();
  if (len > kMaxSequence) throw DecodeError("sequence too long");
  need(len);
  std::vector<std::uint8_t> out(data_.begin() + static_cast<long>(offset_),
                                data_.begin() +
                                    static_cast<long>(offset_ + len));
  offset_ += len;
  return out;
}

void Decoder::expect_done() const {
  if (!done()) throw DecodeError("trailing bytes");
}

namespace {

void encode_transaction_body(Encoder& enc, const Transaction& txn) {
  enc.put_hash(txn.sender().value);
  enc.put_hash(txn.receiver().value);
  enc.put_i64(txn.amount());
  enc.put_i64(txn.fee());
  enc.put_u64(txn.nonce());
  enc.put_hash(txn.signature().value);
}

Transaction decode_transaction_body(Decoder& dec) {
  const crypto::PublicKey sender{dec.get_hash()};
  const crypto::PublicKey receiver{dec.get_hash()};
  const MicroAlgos amount = dec.get_i64();
  const MicroAlgos fee = dec.get_i64();
  const std::uint64_t nonce = dec.get_u64();
  const crypto::Signature signature{dec.get_hash()};
  if (amount <= 0) throw DecodeError("non-positive transaction amount");
  if (fee < 0) throw DecodeError("negative transaction fee");
  return Transaction::from_parts(sender, receiver, amount, fee, nonce,
                                 signature);
}

}  // namespace

std::vector<std::uint8_t> encode_transaction(const Transaction& txn) {
  Encoder enc;
  enc.put_u8(kTagTransaction);
  encode_transaction_body(enc, txn);
  return enc.take();
}

Transaction decode_transaction(std::span<const std::uint8_t> bytes) {
  Decoder dec(bytes);
  if (dec.get_u8() != kTagTransaction)
    throw DecodeError("not a transaction message");
  Transaction txn = decode_transaction_body(dec);
  dec.expect_done();
  return txn;
}

std::vector<std::uint8_t> encode_block(const Block& block) {
  Encoder enc;
  enc.put_u8(kTagBlock);
  enc.put_u64(block.round());
  enc.put_hash(block.prev_hash());
  enc.put_hash(block.seed());
  enc.put_u8(block.is_empty() ? kBlockEmpty : kBlockFull);
  if (!block.is_empty()) {
    enc.put_hash(block.proposer().value);
    enc.put_u32(static_cast<std::uint32_t>(block.transactions().size()));
    for (const Transaction& txn : block.transactions())
      encode_transaction_body(enc, txn);
  }
  return enc.take();
}

Block decode_block(std::span<const std::uint8_t> bytes) {
  Decoder dec(bytes);
  if (dec.get_u8() != kTagBlock) throw DecodeError("not a block message");
  const Round round = dec.get_u64();
  const crypto::Hash256 prev = dec.get_hash();
  const crypto::Hash256 seed = dec.get_hash();
  const std::uint8_t variant = dec.get_u8();
  if (variant != kBlockEmpty && variant != kBlockFull)
    throw DecodeError("unknown block variant");

  Block block = Block::empty(round, prev, seed);
  if (variant == kBlockFull) {
    const crypto::PublicKey proposer{dec.get_hash()};
    const std::uint32_t count = dec.get_u32();
    if (count > kMaxSequence) throw DecodeError("transaction count too big");
    std::vector<Transaction> txns;
    txns.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
      txns.push_back(decode_transaction_body(dec));
    block = Block::from_parts(round, prev, seed, /*is_empty=*/false,
                              proposer, std::move(txns));
  }
  dec.expect_done();
  return block;
}

}  // namespace roleshare::ledger
