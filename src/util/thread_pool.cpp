#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/require.hpp"

namespace roleshare::util {

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  RS_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RS_REQUIRE(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t InnerExecutor::chunk_length(std::size_t n) {
  if (n == 0) return 0;
  // Chunk size from n alone: aim for kTargetChunks chunks but keep every
  // chunk at least kMinChunk indices (the last may be shorter). This is
  // the canonical formula; chunk_count derives from it.
  const std::size_t target = (n + kTargetChunks - 1) / kTargetChunks;
  return std::max(kMinChunk, target);
}

std::size_t InnerExecutor::chunk_count(std::size_t n) {
  if (n == 0) return 0;
  const std::size_t chunk = chunk_length(n);
  return (n + chunk - 1) / chunk;
}

void InnerExecutor::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& body) const {
  if (n == 0) return;
  if (!parallel()) {
    // Inline, but with the pool's error semantics: every index attempted,
    // lowest failing index's exception rethrown.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  pool_->parallel_for_indexed(n, body);
}

void InnerExecutor::for_each_chunk(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body)
    const {
  if (n == 0) return;
  const std::size_t chunk = chunk_length(n);
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    body(c, begin, std::min(n, begin + chunk));
  };
  for_each_index(chunk_count(n), run_chunk);
}

void ThreadPool::parallel_for_indexed(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  std::vector<std::exception_ptr> errors(n);
  const std::size_t fan_out = std::min(workers_.size(), n);
  if (fan_out <= 1) {
    // Inline serial path — same error semantics as the parallel one.
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  } else {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> live{fan_out};
    std::mutex done_mutex;
    std::condition_variable done;
    const auto claim_loop = [&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          body(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      }
      if (live.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mutex);
        done.notify_all();
      }
    };
    for (std::size_t w = 0; w < fan_out; ++w) submit(claim_loop);
    std::unique_lock<std::mutex> lock(done_mutex);
    done.wait(lock, [&] { return live.load() == 0; });
  }
  for (std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace roleshare::util
