// Protocol roles. In a given round a node is a Leader (block proposer), a
// Committee member (votes in at least one BA* step), or an Other online
// node (paper's sets L, M, K).
#pragma once

#include <cstdint>
#include <string_view>

namespace roleshare::consensus {

enum class Role : std::uint8_t { Leader, Committee, Other };

constexpr std::string_view to_string(Role r) {
  switch (r) {
    case Role::Leader:
      return "leader";
    case Role::Committee:
      return "committee";
    case Role::Other:
      return "other";
  }
  return "?";
}

/// BA* step identifiers. Step 0 is proposer sortition; steps 1 and 2 are
/// the Reduction phase; binary steps follow; kFinalStep is the final-vote
/// committee.
inline constexpr std::uint32_t kProposerStep = 0;
inline constexpr std::uint32_t kReductionStep1 = 1;
inline constexpr std::uint32_t kReductionStep2 = 2;
inline constexpr std::uint32_t kFirstBinaryStep = 3;
inline constexpr std::uint32_t kFinalStep = 0xffff'0000;

}  // namespace roleshare::consensus
