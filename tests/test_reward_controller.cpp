#include "econ/reward_controller.hpp"

#include <gtest/gtest.h>

#include "econ/role_based.hpp"
#include "econ/stake_proportional.hpp"

namespace roleshare::econ {
namespace {

using consensus::Role;
using ledger::algos;

struct Fixture {
  ledger::AccountTable accounts;
  std::vector<Role> roles;
  std::vector<std::int64_t> stakes;

  Fixture() {
    const std::vector<Role> layout = {Role::Leader, Role::Committee,
                                      Role::Committee, Role::Other,
                                      Role::Other, Role::Other};
    const std::vector<std::int64_t> amounts = {5, 10, 12, 20, 30, 25};
    for (std::size_t v = 0; v < layout.size(); ++v) {
      accounts.add_account(crypto::KeyPair::derive(9000, v).public_key(),
                           algos(amounts[v]));
      roles.push_back(layout[v]);
      stakes.push_back(amounts[v]);
    }
  }

  RoleSnapshot snapshot() const { return RoleSnapshot(roles, stakes); }
};

TEST(RewardController, SettleCreditsAccounts) {
  Fixture f;
  RewardController controller(std::make_unique<StakeProportionalScheme>());
  const auto report =
      controller.settle_round(1, f.snapshot(), 0, f.accounts);
  EXPECT_EQ(report.injected, algos(20));
  EXPECT_EQ(report.requested, algos(20));
  EXPECT_EQ(report.from_foundation, algos(20));
  EXPECT_EQ(report.from_fees, 0);
  EXPECT_FALSE(report.fee_pool_tapped);
  // Stake-proportional over S_N=102: node 4 (stake 30) gains ~5.88 Algos.
  EXPECT_GT(f.accounts.balance(4), algos(35));
}

TEST(RewardController, MoneyConservation) {
  Fixture f;
  RewardController controller(std::make_unique<StakeProportionalScheme>());
  ledger::MicroAlgos balances_before = 0;
  for (std::size_t v = 0; v < f.accounts.size(); ++v)
    balances_before += f.accounts.balance(static_cast<ledger::NodeId>(v));

  ledger::MicroAlgos distributed = 0, fees_paid = 0;
  for (ledger::Round r = 1; r <= 10; ++r) {
    const auto report =
        controller.settle_round(r, f.snapshot(), 1234, f.accounts);
    distributed += report.distributed;
    fees_paid += 1234;
  }
  ledger::MicroAlgos balances_after = 0;
  for (std::size_t v = 0; v < f.accounts.size(); ++v)
    balances_after += f.accounts.balance(static_cast<ledger::NodeId>(v));
  // Accounts grew exactly by what was distributed.
  EXPECT_EQ(balances_after - balances_before, distributed);
  // Pools hold everything else: emitted + fees == distributed + balances.
  EXPECT_EQ(controller.foundation_pool().emitted() + fees_paid,
            distributed + controller.foundation_pool().balance() +
                controller.fee_pool().balance());
}

TEST(RewardController, FeePoolAccumulatesDuringBootstrap) {
  Fixture f;
  RewardController controller(std::make_unique<StakeProportionalScheme>());
  controller.settle_round(1, f.snapshot(), algos(3), f.accounts);
  // Fees are not used while the Foundation pool is solvent; dust may add.
  EXPECT_GE(controller.fee_pool().balance(), algos(3));
}

TEST(RewardController, FeePoolFundsRewardsAfterExhaustion) {
  Fixture f;
  // Tiny ceiling: the Foundation pool dies after round 1.
  RewardController controller(std::make_unique<StakeProportionalScheme>(),
                              /*use_fee_pool=*/true,
                              /*ceiling=*/algos(20));
  controller.settle_round(1, f.snapshot(), algos(50), f.accounts);
  EXPECT_TRUE(controller.foundation_pool().exhausted());

  const auto report =
      controller.settle_round(2, f.snapshot(), algos(50), f.accounts);
  EXPECT_EQ(report.from_foundation, 0);
  EXPECT_GT(report.from_fees, 0);
  EXPECT_TRUE(report.fee_pool_tapped);
  EXPECT_GT(report.distributed, 0);
}

TEST(RewardController, FeePhaseDisabledLeavesRewardsUnfunded) {
  Fixture f;
  RewardController controller(std::make_unique<StakeProportionalScheme>(),
                              /*use_fee_pool=*/false,
                              /*ceiling=*/algos(20));
  controller.settle_round(1, f.snapshot(), algos(50), f.accounts);
  const auto report =
      controller.settle_round(2, f.snapshot(), algos(50), f.accounts);
  EXPECT_EQ(report.from_foundation, 0);
  EXPECT_EQ(report.from_fees, 0);
  EXPECT_EQ(report.distributed, 0);
}

TEST(RewardController, RoleBasedSchemeRequestsFarLessThanSchedule) {
  Fixture f;
  RewardController controller(
      std::make_unique<RoleBasedScheme>(CostModel{}));
  const auto report =
      controller.settle_round(1, f.snapshot(), 0, f.accounts);
  EXPECT_GT(report.requested, 0);
  EXPECT_LT(report.requested, algos(20) / 100);  // pennies vs 20 Algos
  // The unspent emission stays banked for future rounds.
  EXPECT_GT(controller.foundation_pool().balance(),
            algos(20) - algos(1));
}

TEST(RewardController, RejectsMismatchedAccounts) {
  Fixture f;
  RewardController controller(std::make_unique<StakeProportionalScheme>());
  const RoleSnapshot wrong({Role::Other}, {5});
  EXPECT_THROW(controller.settle_round(1, wrong, 0, f.accounts),
               std::invalid_argument);
}

TEST(RewardController, RejectsNullScheme) {
  EXPECT_THROW(RewardController(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::econ
