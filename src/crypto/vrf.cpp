#include "crypto/vrf.hpp"

namespace roleshare::crypto {

Hash256 VrfInput::message() const {
  return HashBuilder("roleshare.vrf.input")
      .add_u64(round)
      .add_u64(step)
      .add(prev_seed)
      .build();
}

VrfOutput vrf_evaluate(const KeyPair& key, const VrfInput& input) {
  const Hash256 msg = input.message();
  const Signature proof = key.sign(msg);
  // Output is a hash of the proof, as in signature-based VRF constructions.
  const Hash256 output =
      HashBuilder("roleshare.vrf.out").add(proof.value).build();
  return VrfOutput{output, proof};
}

bool vrf_verify(const PublicKey& pk, const VrfInput& input,
                const VrfOutput& out) {
  const Hash256 msg = input.message();
  if (!verify(pk, msg, out.proof)) return false;
  const Hash256 expected =
      HashBuilder("roleshare.vrf.out").add(out.proof.value).build();
  return expected == out.output;
}

}  // namespace roleshare::crypto
