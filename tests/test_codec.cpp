#include "ledger/codec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace roleshare::ledger {
namespace {

crypto::KeyPair key_of(std::uint64_t id) {
  return crypto::KeyPair::derive(3000, id);
}

Transaction sample_txn(std::uint64_t nonce) {
  return Transaction::create(key_of(0), key_of(1).public_key(),
                             algos(2) + 123, 456, nonce);
}

TEST(Codec, EncoderPrimitivesRoundTrip) {
  Encoder enc;
  enc.put_u8(0xab);
  enc.put_u32(0xdeadbeef);
  enc.put_u64(0x0123456789abcdefULL);
  enc.put_i64(-42);
  const crypto::Hash256 h = crypto::HashBuilder("c").add_u64(9).build();
  enc.put_hash(h);
  const std::vector<std::uint8_t> blob = {1, 2, 3};
  enc.put_bytes(blob);

  Decoder dec(enc.bytes());
  EXPECT_EQ(dec.get_u8(), 0xab);
  EXPECT_EQ(dec.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(dec.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(dec.get_i64(), -42);
  EXPECT_EQ(dec.get_hash(), h);
  EXPECT_EQ(dec.get_bytes(), blob);
  EXPECT_TRUE(dec.done());
  EXPECT_NO_THROW(dec.expect_done());
}

TEST(Codec, DecoderRejectsTruncation) {
  Encoder enc;
  enc.put_u64(7);
  for (std::size_t cut = 0; cut < 8; ++cut) {
    Decoder dec(std::span(enc.bytes()).first(cut));
    EXPECT_THROW(dec.get_u64(), DecodeError) << "cut=" << cut;
  }
}

TEST(Codec, DecoderRejectsLengthBomb) {
  Encoder enc;
  enc.put_u32(0xffffffffu);  // absurd length prefix
  Decoder dec(enc.bytes());
  EXPECT_THROW(dec.get_bytes(), DecodeError);
}

TEST(Codec, TransactionRoundTrip) {
  const Transaction txn = sample_txn(7);
  const auto bytes = encode_transaction(txn);
  const Transaction back = decode_transaction(bytes);
  EXPECT_EQ(back.id(), txn.id());
  EXPECT_EQ(back.signature(), txn.signature());
  EXPECT_EQ(back.amount(), txn.amount());
  EXPECT_EQ(back.fee(), txn.fee());
  EXPECT_EQ(back.nonce(), txn.nonce());
  EXPECT_TRUE(back.verify_signature());
}

TEST(Codec, TransactionEncodingIsDeterministic) {
  const Transaction txn = sample_txn(9);
  EXPECT_EQ(encode_transaction(txn), encode_transaction(txn));
}

TEST(Codec, TransactionRejectsWrongTag) {
  auto bytes = encode_transaction(sample_txn(1));
  bytes[0] = 0x7f;
  EXPECT_THROW(decode_transaction(bytes), DecodeError);
}

TEST(Codec, TransactionRejectsTrailingBytes) {
  auto bytes = encode_transaction(sample_txn(1));
  bytes.push_back(0);
  EXPECT_THROW(decode_transaction(bytes), DecodeError);
}

TEST(Codec, TamperedTransactionFailsSignature) {
  auto bytes = encode_transaction(sample_txn(1));
  bytes[70] ^= 0x01;  // flip a bit inside the amount/receiver region
  // Structure still parses (unless the flip hits a validated field), but
  // the signature must no longer verify.
  try {
    const Transaction back = decode_transaction(bytes);
    EXPECT_FALSE(back.verify_signature());
  } catch (const DecodeError&) {
    SUCCEED();  // structural rejection is fine too
  }
}

TEST(Codec, EmptyBlockRoundTrip) {
  const Block block =
      Block::empty(5, crypto::HashBuilder("p").build(),
                   crypto::HashBuilder("s").build());
  const Block back = decode_block(encode_block(block));
  EXPECT_EQ(back.hash(), block.hash());
  EXPECT_TRUE(back.is_empty());
  EXPECT_EQ(back.round(), 5u);
}

TEST(Codec, FullBlockRoundTrip) {
  std::vector<Transaction> txns;
  for (std::uint64_t i = 0; i < 5; ++i) txns.push_back(sample_txn(i));
  const Block block =
      Block::make(9, crypto::HashBuilder("p").build(),
                  crypto::HashBuilder("s").build(), key_of(2).public_key(),
                  txns);
  const Block back = decode_block(encode_block(block));
  EXPECT_EQ(back.hash(), block.hash());
  EXPECT_EQ(back.transactions().size(), 5u);
  EXPECT_EQ(back.total_fees(), block.total_fees());
  EXPECT_EQ(back.proposer(), block.proposer());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(back.transactions()[i].verify_signature());
    EXPECT_EQ(back.transactions()[i].id(), txns[i].id());
  }
}

TEST(Codec, BlockHashStableAcrossCodecRoundTrips) {
  // Hash-over-content must be invariant under serialize/deserialize —
  // otherwise votes cast on a hash would not match relayed blocks.
  const Block block =
      Block::make(3, crypto::HashBuilder("p2").build(),
                  crypto::HashBuilder("s2").build(), key_of(3).public_key(),
                  {sample_txn(1), sample_txn(2)});
  Block current = block;
  for (int i = 0; i < 3; ++i) {
    current = decode_block(encode_block(current));
    EXPECT_EQ(current.hash(), block.hash());
  }
}

TEST(Codec, BlockRejectsUnknownVariant) {
  auto bytes = encode_block(Block::empty(1, crypto::Hash256::zero(),
                                         crypto::Hash256::zero()));
  bytes[1 + 8 + 32 + 32] = 0x09;  // variant byte after tag+round+2 hashes
  EXPECT_THROW(decode_block(bytes), DecodeError);
}

TEST(Codec, BlockRejectsTruncatedTransactionList) {
  const Block block =
      Block::make(1, crypto::Hash256::zero(), crypto::Hash256::zero(),
                  key_of(2).public_key(), {sample_txn(1), sample_txn(2)});
  auto bytes = encode_block(block);
  bytes.resize(bytes.size() - 10);
  EXPECT_THROW(decode_block(bytes), DecodeError);
}

TEST(Codec, CrossTypeDecodingRejected) {
  const auto txn_bytes = encode_transaction(sample_txn(1));
  EXPECT_THROW(decode_block(txn_bytes), DecodeError);
  const auto block_bytes = encode_block(
      Block::empty(1, crypto::Hash256::zero(), crypto::Hash256::zero()));
  EXPECT_THROW(decode_transaction(block_bytes), DecodeError);
}

TEST(Codec, FuzzedInputsNeverCrash) {
  // Random byte strings must either decode or throw DecodeError — never
  // crash or hang. (Property-style sweep.)
  util::Rng rng(404);
  for (int i = 0; i < 500; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 300));
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      (void)decode_transaction(junk);
    } catch (const DecodeError&) {
    }
    try {
      (void)decode_block(junk);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

TEST(Codec, MutatedValidMessagesNeverCrash) {
  // Bit-flip fuzzing on a valid block: every mutation either decodes to
  // something (whose signature checks will catch tampering) or throws.
  const Block block =
      Block::make(2, crypto::Hash256::zero(), crypto::Hash256::zero(),
                  key_of(2).public_key(), {sample_txn(1)});
  const auto bytes = encode_block(block);
  util::Rng rng(405);
  for (int i = 0; i < 300; ++i) {
    auto mutated = bytes;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    mutated[pos] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    try {
      (void)decode_block(mutated);
    } catch (const DecodeError&) {
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace roleshare::ledger
