#include "sim/round_engine.hpp"

#include <algorithm>
#include <functional>

#include "consensus/binary_ba.hpp"
#include "consensus/proposal.hpp"
#include "consensus/reduction.hpp"
#include "consensus/roles.hpp"
#include "consensus/votes.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

namespace {

using consensus::Role;
using crypto::Hash256;
using game::Strategy;
using ledger::NodeId;

/// Everything one voting step needs from the round.
struct StepContext {
  const Network* network = nullptr;
  const consensus::ConsensusParams* params = nullptr;
  const std::vector<std::int64_t>* stakes = nullptr;
  std::int64_t total_stake = 0;
  ledger::Round round = 0;
  Hash256 prev_seed;
  const net::RelaySet* relay_set = nullptr;
  const net::GossipEngine* gossip = nullptr;
  /// Root of the round's gossip randomness; each (step, origin) propagation
  /// draws from the independent stream gossip_root.split(step).split(origin)
  /// so the fan-out order cannot change any sampled delay.
  const util::Rng* gossip_root = nullptr;
  const util::InnerExecutor* exec = nullptr;
  /// Marked Committee for nodes that actually vote (observed roles).
  std::vector<Role>* observed_roles = nullptr;
  /// Marked Committee for every elected node, voting or not (true roles).
  std::vector<Role>* true_roles = nullptr;
};

struct StepOutcome {
  std::optional<Hash256> winner;
  bool coin = false;
};

void mark_committee(std::vector<Role>& roles, NodeId v) {
  if (roles[v] == Role::Other) roles[v] = Role::Committee;
}

/// Independent delay stream for one (step, origin) propagation.
util::Rng origin_stream(const util::Rng& gossip_root, std::uint32_t step,
                        NodeId origin) {
  return gossip_root.split(step).split(origin);
}

/// Runs one voting step: elects the committee for `step`, collects votes
/// from members for whom `value_of` returns a value, gossips each vote, and
/// tallies each node's delay-filtered view against `quorum`. All per-node
/// and per-vote loops fan out across ctx.exec.
std::vector<StepOutcome> run_vote_step(
    const StepContext& ctx, std::uint32_t step, std::uint64_t expected_stake,
    double quorum,
    const std::function<std::optional<Hash256>(NodeId)>& value_of) {
  const std::size_t n = ctx.network->node_count();
  const auto& strategies = ctx.network->strategies();

  const consensus::Committee committee = consensus::elect_committee(
      ctx.network->keys(), *ctx.stakes, ctx.round, step, ctx.prev_seed,
      expected_stake, ctx.total_stake, *ctx.exec);

  std::vector<consensus::Vote> votes;
  votes.reserve(committee.members.size());
  for (const consensus::CommitteeMember& m : committee.members) {
    if (ctx.true_roles != nullptr) mark_committee(*ctx.true_roles, m.node);
    if (strategies[m.node] != Strategy::Cooperate) continue;
    const std::optional<Hash256> value = value_of(m.node);
    if (!value.has_value()) continue;
    if (ctx.observed_roles != nullptr)
      mark_committee(*ctx.observed_roles, m.node);
    votes.push_back(consensus::make_vote(
        m.node, ctx.network->keys()[m.node].public_key(), ctx.round, step,
        *value, m.sortition));
  }

  // One Dijkstra per vote, each on its own (step, voter) delay stream —
  // the heavy, irregular items, claimed per index.
  std::vector<std::vector<net::TimeMs>> arrivals(votes.size());
  ctx.exec->for_each_index(votes.size(), [&](std::size_t i) {
    util::Rng rng = origin_stream(*ctx.gossip_root, step, votes[i].voter);
    arrivals[i] =
        ctx.gossip->propagate(votes[i].voter, 0.0, *ctx.relay_set, rng);
  });

  // Every receiving node verifies each vote's sortition proof; the check
  // is deterministic per vote, so the simulator performs it once per vote
  // and shares the verdict across receivers (the per-node *cost* of
  // verification is a model parameter, not re-simulated work).
  const crypto::SortitionParams sparams{expected_stake, ctx.total_stake};
  const std::vector<std::uint8_t> valid = consensus::verify_votes(
      votes, ctx.prev_seed, *ctx.stakes, sparams, *ctx.exec);

  // Per-node tally over valid votes that arrive within the step timeout.
  const net::TimeMs deadline = ctx.params->step_timeout_ms;
  std::vector<StepOutcome> out(n);
  ctx.exec->for_each_chunk(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (!ctx.relay_set->online[v]) continue;
      consensus::VoteCounter counter(quorum);
      for (std::size_t i = 0; i < votes.size(); ++i) {
        if (valid[i] == 0 || arrivals[i][v] > deadline) continue;
        counter.add(votes[i]);
      }
      const consensus::TallyResult tally = counter.result();
      out[v].winner = tally.winner;
      out[v].coin = counter.common_coin().value_or(false);
    }
  });
  return out;
}

}  // namespace

RoundEngine::RoundEngine(Network& network, consensus::ConsensusParams params,
                         util::ThreadPool* inner_pool)
    : network_(network), params_(params), exec_(inner_pool) {
  params_.validate();
}

RoundResult RoundEngine::run_round() {
  Network& net = network_;
  const std::size_t n = net.node_count();
  const ledger::Round round = net.chain().next_round();
  util::Rng rng = net.round_rng(round);
  // All gossip-delay randomness hangs off this independent child stream,
  // split per (step, origin); `rng` itself only feeds the round-level
  // synchrony draw. split() derives from seed material, not stream
  // position, so the two cannot interfere.
  const util::Rng gossip_root = rng.split("gossip");

  // Departed (non-live) nodes leave the active stake pool entirely: with
  // stake 0 sortition can never elect them, and the committee expectations
  // are measured against live stake only. Node ids stay stable — every
  // per-node vector below remains indexed by the full population.
  const std::vector<std::uint8_t>& live = net.live_mask();
  std::vector<std::int64_t> stakes = net.accounts().stakes();
  std::int64_t total_stake = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!live[v]) stakes[v] = 0;
    total_stake += stakes[v];
  }
  RS_REQUIRE(total_stake > 0,
             "network has no live stake — churn floor left no live nodes");

  RoundResult result;
  result.round = round;
  result.live_count = net.live_count();
  result.synchrony = net.synchrony().advance_round(rng);

  const net::GossipEngine gossip(net.topology(), net.delays(),
                                 net.synchrony().delay_factor());

  // Relay set from this round's strategies: cooperators forward, online
  // defectors receive only, offline and departed nodes are absent.
  const std::vector<Strategy>& strategies = net.strategies();
  net::RelaySet relay;
  relay.relays.assign(n, false);
  relay.online.assign(n, false);
  for (std::size_t v = 0; v < n; ++v) {
    relay.online[v] = live[v] && strategies[v] != Strategy::Offline;
    relay.relays[v] = live[v] && strategies[v] == Strategy::Cooperate;
  }

  const Hash256 prev_seed = net.chain().current_seed();
  const Hash256 next_seed = net.chain().next_seed();
  const Hash256 tip_hash = net.chain().tip().hash();
  const ledger::Block empty_block =
      ledger::Block::empty(round, tip_hash, next_seed);
  const Hash256 empty_hash = empty_block.hash();

  std::vector<Role> observed_roles(n, Role::Other);
  std::vector<Role> true_roles(n, Role::Other);

  // ---- Block proposal phase -------------------------------------------
  const crypto::VrfInput proposer_input{round, consensus::kProposerStep,
                                        prev_seed};
  const crypto::SortitionParams proposer_params{
      params_.expected_proposer_stake, total_stake};

  // Per-node sortition draws fan out across the executor; the winner scan
  // that builds proposals stays serial in node order (few winners).
  const std::vector<crypto::SortitionResult> proposer_draws =
      crypto::sortition_batch(net.keys(), proposer_input, stakes,
                              proposer_params, exec_);
  std::vector<consensus::BlockProposal> proposals;
  for (std::size_t v = 0; v < n; ++v) {
    const crypto::SortitionResult& sres = proposer_draws[v];
    if (!sres.selected()) continue;
    true_roles[v] = Role::Leader;
    if (strategies[v] != Strategy::Cooperate) continue;
    observed_roles[v] = Role::Leader;
    ledger::Block block =
        ledger::Block::make(round, tip_hash, next_seed,
                            net.keys()[v].public_key(), net.txpool().peek(64));
    proposals.push_back(consensus::make_proposal(
        static_cast<NodeId>(v), net.keys()[v].public_key(), std::move(block),
        sres));
  }
  result.proposals = proposals.size();

  // One gossip propagation per proposal, each on its own origin stream.
  std::vector<std::vector<net::TimeMs>> proposal_arrivals(proposals.size());
  exec_.for_each_index(proposals.size(), [&](std::size_t p) {
    util::Rng prng = origin_stream(gossip_root, consensus::kProposerStep,
                                   proposals[p].proposer);
    proposal_arrivals[p] =
        gossip.propagate(proposals[p].proposer, 0.0, relay, prng);
  });

  // Per-node proposal selection within the proposal timeout; also track
  // whether a node ever receives each block body at all (needed to
  // "extract" the block the votes certify).
  std::vector<int> best_idx(n, -1);
  exec_.for_each_chunk(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (!relay.online[v]) continue;
      std::uint64_t best_priority = 0;
      Hash256 best_hash;
      for (std::size_t p = 0; p < proposals.size(); ++p) {
        if (proposal_arrivals[p][v] > params_.proposal_timeout_ms) continue;
        const Hash256 h = proposals[p].block_hash();
        if (best_idx[v] < 0 || proposals[p].priority > best_priority ||
            (proposals[p].priority == best_priority && h < best_hash)) {
          best_idx[v] = static_cast<int>(p);
          best_priority = proposals[p].priority;
          best_hash = h;
        }
      }
    }
  });

  StepContext ctx;
  ctx.network = &net;
  ctx.params = &params_;
  ctx.stakes = &stakes;
  ctx.total_stake = total_stake;
  ctx.round = round;
  ctx.prev_seed = prev_seed;
  ctx.relay_set = &relay;
  ctx.gossip = &gossip;
  ctx.gossip_root = &gossip_root;
  ctx.exec = &exec_;
  ctx.observed_roles = &observed_roles;
  ctx.true_roles = &true_roles;

  // ---- Reduction phase (2 steps) --------------------------------------
  const double step_quorum = params_.step_quorum();
  const auto step1 = run_vote_step(
      ctx, consensus::kReductionStep1, params_.expected_step_stake,
      step_quorum, [&](NodeId v) -> std::optional<Hash256> {
        return consensus::reduction_step1_value(
            best_idx[v] >= 0
                ? std::optional<Hash256>(proposals[best_idx[v]].block_hash())
                : std::nullopt,
            empty_hash);
      });

  const auto step2 = run_vote_step(
      ctx, consensus::kReductionStep2, params_.expected_step_stake,
      step_quorum, [&](NodeId v) -> std::optional<Hash256> {
        return step1[v].winner.value_or(empty_hash);
      });

  // ---- BinaryBA* -------------------------------------------------------
  std::vector<consensus::BinaryBaState> ba;
  ba.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    ba.emplace_back(step2[v].winner.value_or(empty_hash), empty_hash,
                    params_.max_binary_iterations);
  }
  // Concluded nodes keep voting their value for 3 more sub-steps to pull
  // stragglers over the line (Gilad et al., Alg. 8).
  std::vector<int> post_votes(n, 0);

  const std::uint32_t last_step = consensus::kFirstBinaryStep +
                                  3 * params_.max_binary_iterations;
  for (std::uint32_t step = consensus::kFirstBinaryStep; step < last_step;
       ++step) {
    bool any_running = false;
    for (std::size_t v = 0; v < n; ++v)
      if (relay.online[v] && ba[v].running()) any_running = true;
    if (!any_running) break;

    const auto outs = run_vote_step(
        ctx, step, params_.expected_step_stake, step_quorum,
        [&](NodeId v) -> std::optional<Hash256> {
          if (ba[v].running() && ba[v].step_number() == step)
            return ba[v].vote_value();
          if (!ba[v].running() && post_votes[v] > 0) return ba[v].result();
          return std::nullopt;
        });

    // Each node's BA state machine advances independently (ba[v] and
    // post_votes[v] are only touched at index v).
    exec_.for_each_chunk(n, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        if (!relay.online[v]) continue;
        if (ba[v].running() && ba[v].step_number() == step) {
          ba[v].advance(outs[v].winner, outs[v].coin);
          if (!ba[v].running() &&
              ba[v].status() != consensus::BaStatus::Exhausted)
            post_votes[v] = 3;
        } else if (!ba[v].running() && post_votes[v] > 0) {
          --post_votes[v];
        }
      }
    });
  }

  // ---- FINAL vote ------------------------------------------------------
  const auto finals = run_vote_step(
      ctx, consensus::kFinalStep, params_.expected_final_stake,
      params_.final_quorum(), [&](NodeId v) -> std::optional<Hash256> {
        if (ba[v].concluded_in_first_iteration() &&
            ba[v].result() != empty_hash)
          return ba[v].result();
        return std::nullopt;
      });

  // ---- Outcomes --------------------------------------------------------
  auto body_received = [&](NodeId v, const Hash256& h) {
    if (h == empty_hash) return true;  // the empty block is derived locally
    for (std::size_t p = 0; p < proposals.size(); ++p) {
      if (proposals[p].block_hash() == h)
        return proposal_arrivals[p][v] < net::kNever;
    }
    return false;
  };

  result.outcomes.assign(n, NodeOutcome::NoBlock);
  exec_.for_each_chunk(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      if (!relay.online[v]) continue;
      const auto id = static_cast<NodeId>(v);
      if (finals[v].winner.has_value()) {
        result.outcomes[v] = body_received(id, *finals[v].winner)
                                 ? NodeOutcome::Final
                                 : NodeOutcome::NoBlock;
      } else if (ba[v].status() == consensus::BaStatus::ConcludedBlock ||
                 ba[v].status() == consensus::BaStatus::ConcludedEmpty) {
        result.outcomes[v] = body_received(id, ba[v].result())
                                 ? NodeOutcome::Tentative
                                 : NodeOutcome::NoBlock;
      }
    }
  });

  // Fractions over the live population (live_count > 0 is implied by the
  // live-stake check above); without churn this is the full node count.
  std::size_t finals_count = 0, tentative_count = 0;
  for (const NodeOutcome o : result.outcomes) {
    if (o == NodeOutcome::Final) ++finals_count;
    if (o == NodeOutcome::Tentative) ++tentative_count;
  }
  const auto live_n = static_cast<double>(result.live_count);
  result.final_fraction = static_cast<double>(finals_count) / live_n;
  result.tentative_fraction = static_cast<double>(tentative_count) / live_n;
  result.none_fraction =
      1.0 - result.final_fraction - result.tentative_fraction;

  // ---- Canonical chain append -----------------------------------------
  // The chain advances with the plurality conclusion (weighting every
  // online node equally); if no node concluded a block, the round yields
  // the empty block so seeds keep evolving.
  std::vector<std::pair<Hash256, std::size_t>> conclusion_counts;
  for (std::size_t v = 0; v < n; ++v) {
    if (!relay.online[v]) continue;
    if (ba[v].status() != consensus::BaStatus::ConcludedBlock) continue;
    const Hash256 h = ba[v].result();
    auto it = std::find_if(conclusion_counts.begin(), conclusion_counts.end(),
                           [&](const auto& e) { return e.first == h; });
    if (it == conclusion_counts.end()) {
      conclusion_counts.emplace_back(h, 1);
    } else {
      ++it->second;
    }
  }
  const ledger::Block* agreed = nullptr;
  std::size_t best_count = 0;
  for (const auto& [hash, count] : conclusion_counts) {
    if (count <= best_count) continue;
    for (const consensus::BlockProposal& p : proposals) {
      if (p.block_hash() == hash) {
        agreed = &p.block;
        best_count = count;
        break;
      }
    }
  }
  if (agreed != nullptr) {
    ledger::Block block = *agreed;
    net.txpool().mark_included(block.transactions());
    const bool ok = net.chain().append(std::move(block));
    RS_ENSURE(ok, "agreed block must extend the chain");
    result.non_empty_block = !net.chain().tip().is_empty();
  } else {
    const bool ok = net.chain().append(empty_block);
    RS_ENSURE(ok, "empty block must extend the chain");
  }

  // ---- Role snapshots for the reward schemes and the strategic loop ----
  std::vector<std::int64_t> reward_stakes = stakes;
  for (std::size_t v = 0; v < n; ++v)
    if (!relay.online[v]) reward_stakes[v] = 0;  // offline: never rewarded
  result.roles_true.emplace(std::move(true_roles), reward_stakes);
  result.roles.emplace(std::move(observed_roles), std::move(reward_stakes));

  return result;
}

}  // namespace roleshare::sim
