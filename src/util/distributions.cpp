#include "util/distributions.hpp"

#include <cmath>

#include "util/require.hpp"

namespace roleshare::util {

std::vector<std::int64_t> StakeDistribution::sample_many(Rng& rng,
                                                         std::size_t n) const {
  std::vector<std::int64_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

UniformStake::UniformStake(std::int64_t lo, std::int64_t hi)
    : lo_(lo), hi_(hi) {
  RS_REQUIRE(lo >= 1, "stakes must be positive");
  RS_REQUIRE(lo <= hi, "uniform stake range");
}

std::int64_t UniformStake::sample(Rng& rng) const {
  return rng.uniform_int(lo_, hi_);
}

std::string UniformStake::name() const {
  return "U(" + std::to_string(lo_) + "," + std::to_string(hi_) + ")";
}

NormalStake::NormalStake(double mean, double sigma, std::int64_t min_stake)
    : mean_(mean), sigma_(sigma), min_stake_(min_stake) {
  RS_REQUIRE(sigma >= 0.0, "normal stake sigma");
  RS_REQUIRE(min_stake >= 1, "stakes must be positive");
}

std::int64_t NormalStake::sample(Rng& rng) const {
  const double draw = rng.normal(mean_, sigma_);
  const auto rounded = static_cast<std::int64_t>(std::llround(draw));
  return rounded < min_stake_ ? min_stake_ : rounded;
}

std::string NormalStake::name() const {
  auto fmt = [](double v) {
    // Print integers without a trailing ".0" so names match the paper.
    if (v == std::floor(v)) return std::to_string(static_cast<long long>(v));
    return std::to_string(v);
  };
  return "N(" + fmt(mean_) + "," + fmt(sigma_) + ")";
}

ConstantStake::ConstantStake(std::int64_t value) : value_(value) {
  RS_REQUIRE(value >= 1, "stakes must be positive");
}

std::int64_t ConstantStake::sample(Rng&) const { return value_; }

std::string ConstantStake::name() const {
  return "Const(" + std::to_string(value_) + ")";
}

std::unique_ptr<StakeDistribution> make_uniform_stake(std::int64_t lo,
                                                      std::int64_t hi) {
  return std::make_unique<UniformStake>(lo, hi);
}

std::unique_ptr<StakeDistribution> make_normal_stake(double mean, double sigma,
                                                     std::int64_t min) {
  return std::make_unique<NormalStake>(mean, sigma, min);
}

std::unique_ptr<StakeDistribution> make_constant_stake(std::int64_t value) {
  return std::make_unique<ConstantStake>(value);
}

}  // namespace roleshare::util
