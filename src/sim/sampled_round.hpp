// The sampled (population-scale) round path — DESIGN.md §10.
//
// The paper-faithful engine (round_engine.cpp) evaluates every node's VRF
// per step, so a round is inherently Ω(N): selection is only knowable by
// hashing every key. That is the right model at paper scale and the wrong
// one at a million accounts over thousands of rounds. This header defines
// the CommitteeModel::Sampled round semantics, evaluable two ways that are
// bit-identical by contract:
//
//   dense   RoundEngine::run_round_into with committee_model == Sampled —
//           rebuilds the stake index from the ledger each round (O(N)) and
//           materializes full per-node outcome/role vectors.
//   sparse  RoundEngine::run_round_sparse_into — a caller-owned
//           SparseRoundContext carries the stake index and population
//           counters across rounds, absorbing reward/churn deltas in
//           O(log N) each, so the whole round touches
//           O(committee · log N) state.
//
// Sampled semantics (the spec both paths implement):
//   - Per step, tau seats are drawn with replacement from the live stake
//     distribution on the stream round_rng.split("election").split(step);
//     a node's vote weight is the seats it won. This is exactly the
//     sub-user accounting sim/reward_experiment.cpp has always used for
//     committee stakes, promoted to an engine mode.
//   - Gossip is mean-field: one population arrival time per (step, origin)
//     message, drawn on the same per-origin streams the dense engine uses
//     (gossip_root.split(step), seeds derived per origin) — hop count from
//     the relay fraction, per-hop delays from the network's DelayModel
//     scaled by the synchrony factor. Every online node shares the same
//     delay-filtered view, so one representative BA state machine stands
//     in for the whole online population; offline and departed nodes see
//     nothing, exactly as in the dense engine's outcome rules.
//   - Proposer priorities and vote coin hashes are synthesized per
//     (round, step, node) from the chain seed, mirroring the VRF-derived
//     quantities they replace.
//
// What the model gives up relative to PerNodeVrf — per-receiver delay
// heterogeneity and per-node VRF membership — it gives up identically in
// both evaluations; everything the long-horizon economy measures (who is
// elected, who gets paid, how stake compounds and concentrates) is
// preserved. tests/prop/prop_sparse.cpp locks dense == sparse under
// random configs, policies and churn.
#pragma once

#include <cstdint>
#include <vector>

#include "consensus/params.hpp"
#include "consensus/roles.hpp"
#include "crypto/hash.hpp"
#include "ledger/block.hpp"
#include "ledger/types.hpp"
#include "net/sim_time.hpp"
#include "net/synchrony.hpp"
#include "util/stake_index.hpp"

namespace roleshare::sim {

class Network;
struct RoundResult;
struct RoundWorkspace;
enum class NodeOutcome : std::uint8_t;

/// One node the round actually touched (elected as proposer or committee
/// member in any step), with the roles and reward stake the dense path
/// would record for it. `reward_stake` is the node's stake in Algos, 0
/// when it was offline this round (offline nodes earn nothing).
struct SparseNodeRole {
  ledger::NodeId node = 0;
  consensus::Role role_true = consensus::Role::Other;
  consensus::Role role_observed = consensus::Role::Other;
  std::int64_t reward_stake = 0;
};

/// The sparse round's output: aggregates plus the touched-node role list.
/// expand_sparse_into materializes the equivalent full RoundResult.
struct SparseRoundResult {
  ledger::Round round = 0;
  std::size_t live_count = 0;
  /// Live nodes that are not playing Offline — the population whose
  /// outcome is `online_outcome`; everyone else is NoBlock.
  std::size_t online_count = 0;
  /// Total stake (Algos) of online nodes: S_L + S_M + S_K of the round's
  /// reward snapshot without walking the population.
  std::int64_t online_stake = 0;
  /// The representative outcome every online node shares.
  NodeOutcome online_outcome;
  double final_fraction = 0.0;
  double tentative_fraction = 0.0;
  double none_fraction = 0.0;
  bool non_empty_block = false;
  std::size_t proposals = 0;
  net::SynchronyState synchrony = net::SynchronyState::Strong;
  /// First-touch order; each node appears once.
  std::vector<SparseNodeRole> touched;
};

/// Caller-owned cross-round state: the incremental stake index plus the
/// population counters the mean-field gossip model needs. Initialized
/// once in O(N); every subsequent mutation flows through refresh_node in
/// O(log N) — reward credits, churn arrivals/departures, strategy flips.
class SparseRoundContext {
 public:
  /// Full O(N) (re)build from the network's current accounts, live mask
  /// and strategies. The per-round deltas go through refresh_node.
  void init_from(const Network& net);

  /// Re-reads node v's stake, liveness and strategy from the network and
  /// folds the delta into the index and counters. O(log N). Call after
  /// crediting a reward, toggling liveness, or changing v's strategy.
  void refresh_node(const Network& net, ledger::NodeId v);

  std::size_t size() const { return index_.size(); }
  const util::StakeIndex& index() const { return index_; }
  bool online(ledger::NodeId v) const { return online_[v] != 0; }
  bool relay(ledger::NodeId v) const { return relay_[v] != 0; }
  std::size_t online_count() const { return online_count_; }
  std::size_t relay_count() const { return relay_count_; }
  std::int64_t online_stake() const { return online_stake_; }

 private:
  util::StakeIndex index_;  // live stake in Algos; departed nodes are 0
  std::vector<std::uint8_t> online_;  // live && strategy != Offline
  std::vector<std::uint8_t> relay_;   // live && strategy == Cooperate
  std::size_t online_count_ = 0;
  std::size_t relay_count_ = 0;
  std::int64_t online_stake_ = 0;
};

/// Reusable sparse scratch (the sparse analogue of RoundWorkspace):
/// touched-node bookkeeping via epoch-stamped marks (no O(N) clearing),
/// per-step committee buffers, and the derive_seeds label/seed blocks.
/// All vectors keep their capacity across rounds, so the steady-state
/// round allocates nothing beyond the chain append.
struct SparseRoundWorkspace {
  // Per-round touched set: touched_epoch[v] == round_epoch marks v as
  // already in `touched` at slot touched_slot[v].
  std::vector<std::uint64_t> touched_epoch;
  std::vector<std::uint32_t> touched_slot;
  std::uint64_t round_epoch = 0;

  // Per-step seat dedup, same trick with its own epoch counter.
  std::vector<std::uint64_t> seat_epoch;
  std::vector<std::uint32_t> seat_slot;
  std::uint64_t elect_epoch = 0;

  // Committee of the current step, first-draw order.
  std::vector<ledger::NodeId> members;
  std::vector<std::uint64_t> weights;

  // derive_seeds blocks for the per-origin gossip streams.
  std::vector<std::uint64_t> origin_labels;
  std::vector<std::uint64_t> origin_seeds;

  // Proposal-phase scratch: the cooperating winners' broadcasts as
  // parallel arrays, plus the materialized blocks (their transaction
  // vectors are the one protocol-inherent allocation a round keeps, same
  // as the dense workspace's proposal list).
  std::vector<ledger::NodeId> proposer_ids;
  std::vector<std::uint64_t> proposer_priorities;
  std::vector<net::TimeMs> proposal_arrivals;
  std::vector<crypto::Hash256> proposal_hashes;
  std::vector<ledger::Block> proposal_blocks;

  /// Bytes across every buffer — the memory-accounting hook round_latency
  /// reports beside the dense workspace_bytes.
  std::size_t capacity_bytes() const;
};

/// Mean-field hop count: how many relay hops a message needs to blanket
/// an online population of `online` nodes when `relays` of them forward
/// with the given fan-out. 0 means unreachable (no relays); capped at 64
/// hops so a vanishing relay fraction degrades to "very late", not "very
/// expensive". Shared by both evaluations — it IS the gossip model.
std::uint32_t mean_field_hops(std::size_t online, std::size_t relays,
                              std::size_t fan_out);

/// Runs one Sampled-model round: elections and votes from ctx's stake
/// index, representative BA, chain append, touched-role collection.
/// Requires params.committee_model == Sampled and total live stake > 0.
/// The free-function core behind both RoundEngine entry points.
void run_sampled_round_into(Network& net,
                            const consensus::ConsensusParams& params,
                            SparseRoundResult& out,
                            const SparseRoundContext& ctx,
                            SparseRoundWorkspace& ws);

/// Materializes the full-population RoundResult the dense path reports:
/// per-node outcomes (online => the representative outcome), observed and
/// true role snapshots with offline-zeroed reward stakes, and the copied
/// aggregates. O(N); buffers come from `ws`.
void expand_sparse_into(const Network& net, const SparseRoundResult& sparse,
                        RoundResult& result, RoundWorkspace& ws);

}  // namespace roleshare::sim
