#!/usr/bin/env python3
"""Diff two BENCH_*.json files and fail on wall-time regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold=0.10]

Compares every numeric field whose name is `wall_ms` or ends in
`_wall_ms` / starts with a per-size prefix ending in `wall_ms_serial` /
`wall_ms_parallel` (the round_latency sweep layout), printing a table of
baseline vs current with the relative change. Exits non-zero when any
wall-time field regressed by more than the threshold (default +10%).

A field present in the current file but absent from the baseline (a
freshly added metric — e.g. the sparse-ladder keys a new bench revision
emits) is not a regression and must not crash the gate: each such key is
reported as a per-key "new metric, no baseline" note and the comparison
still exits 0. Refresh the committed baseline to start tracking it.

Non-timing fields are reported informationally when they differ in a way
worth flagging (`bit_identical` flipping to "no" is always an error;
`allocs_per_round_steady` growing beyond the threshold is a warning,
since allocation counts are a contract the workspace refactor
established but legitimately move with config changes; `partial_bytes`
from the shard workers tracks the on-disk partial size per format —
growth warns, and a `partial_format` flip between baseline and current
is called out since sizes are only comparable within one format).

Timing noise caveat: single-run wall times on shared CI runners jitter;
the 10% default threshold is deliberately loose. Use a tighter threshold
only on quiet dedicated hardware.
"""

import argparse
import json
import sys


def is_wall_field(name: str) -> bool:
    return name == "wall_ms" or name.endswith("wall_ms") or \
        "wall_ms_" in name or name.endswith("ms_per_round_serial")


def load(path: str) -> dict:
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"error: cannot load {path}: {err}")


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Compare two BENCH_*.json files for perf regressions.")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max allowed relative wall-time regression "
                             "(default 0.10 = +10%%)")
    args = parser.parse_args()

    base = load(args.baseline)
    curr = load(args.current)

    if base.get("bench") != curr.get("bench"):
        print(f"warning: comparing different benches: "
              f"{base.get('bench')!r} vs {curr.get('bench')!r}")

    failures = []
    warnings = []
    notes = []
    rows = []
    # Current-only fields: a new bench revision legitimately grows new
    # metrics before the committed baseline catches up. Note each one so
    # the gap is visible (and the baseline gets refreshed), never crash
    # or silently swallow them.
    for name in curr:
        if name not in base:
            notes.append(f"new metric, no baseline: {name!r} = {curr[name]!r}")
    for name in base:
        if name not in curr:
            warnings.append(f"field {name!r} missing from current")
            continue
        bval, cval = base[name], curr[name]
        if name.endswith("bit_identical"):
            if cval != "yes":
                failures.append(f"{name}: determinism gate broken "
                                f"({bval!r} -> {cval!r})")
            continue
        if name == "partial_format":
            # Shard partial sizes are only comparable within one format;
            # a json-vs-bin baseline mismatch makes partial_bytes noise.
            if bval != cval:
                warnings.append(
                    f"partial_format changed ({bval!r} -> {cval!r}); "
                    f"partial_bytes deltas reflect the format, not a "
                    f"regression")
            continue
        if not isinstance(bval, (int, float)) or \
                not isinstance(cval, (int, float)):
            continue
        if not is_wall_field(name) and \
                not name.endswith("allocs_per_round_steady") and \
                name != "partial_bytes":
            continue
        if bval <= 0:
            continue
        change = (cval - bval) / bval
        rows.append((name, bval, cval, change))
        if change > args.threshold:
            msg = (f"{name}: {bval:.1f} -> {cval:.1f} "
                   f"(+{change * 100.0:.1f}% > +{args.threshold * 100.0:.0f}%)")
            if name.endswith("allocs_per_round_steady"):
                warnings.append("allocation growth: " + msg)
            elif name == "partial_bytes":
                # Checkpoint files legitimately grow with run counts; the
                # size trend is tracked, not gated.
                warnings.append("partial size growth: " + msg)
            else:
                failures.append(msg)

    if rows:
        width = max(len(r[0]) for r in rows)
        print(f"{'field':<{width}}  {'baseline':>12}  {'current':>12}  change")
        for name, bval, cval, change in rows:
            print(f"{name:<{width}}  {bval:>12.1f}  {cval:>12.1f}  "
                  f"{change * 100.0:+6.1f}%")
    else:
        print("no comparable wall-time fields found")

    for msg in notes:
        print(f"note: {msg}")
    for msg in warnings:
        print(f"warning: {msg}")
    if failures:
        for msg in failures:
            print(f"REGRESSION: {msg}")
        return 1
    print(f"OK: no wall-time regression beyond "
          f"+{args.threshold * 100.0:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
