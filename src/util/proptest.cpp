#include "util/proptest.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace roleshare::util::proptest {

namespace {

std::optional<std::uint64_t> env_u64(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  RS_REQUIRE(end != raw && *end == '\0',
             std::string(name) + " is not a decimal integer: \"" + raw + "\"");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

PropParams resolve_params(std::size_t default_cases) {
  PropParams p;
  if (const auto cases = env_u64("ROLESHARE_PROP_CASES")) {
    p.cases = static_cast<std::size_t>(*cases);
  } else if (const auto scale = env_u64("ROLESHARE_PROP_SCALE")) {
    p.cases = default_cases * static_cast<std::size_t>(*scale);
  } else {
    p.cases = default_cases;
  }
  RS_REQUIRE(p.cases > 0, "property case count resolved to zero");
  if (const auto seed = env_u64("ROLESHARE_PROP_SEED")) p.root_seed = *seed;
  p.replay_case_seed = env_u64("ROLESHARE_PROP_CASE_SEED");
  return p;
}

Checker::Checker(std::string test_id, std::size_t default_cases)
    : Checker(std::move(test_id), resolve_params(default_cases)) {}

Checker::Checker(std::string test_id, PropParams params)
    : test_id_(std::move(test_id)),
      params_(params),
      test_stream_(Rng(params_.root_seed).split(test_id_)) {}

void Checker::record_failure(std::size_t check_index, std::size_t case_index,
                             std::uint64_t case_seed,
                             std::size_t shrink_steps,
                             std::size_t shrink_evals,
                             const std::string& counterexample,
                             const std::string& note) {
  std::ostringstream os;
  os << "property failed: " << test_id_ << " (check #" << check_index
     << ")\n"
     << "  root seed : " << params_.root_seed
     << "  (env ROLESHARE_PROP_SEED)\n"
     << "  case      : " << case_index << " of " << params_.cases << "\n"
     << "  case seed : " << case_seed << "\n"
     << "  replay    : ROLESHARE_PROP_CASE_SEED=" << case_seed
     << " <test binary> --gtest_filter=" << test_id_ << "\n"
     << "  shrunk    : " << shrink_steps << " steps (" << shrink_evals
     << " evaluations)\n"
     << "  minimal counterexample:\n    " << counterexample << "\n";
  if (!note.empty()) os << "  note      : " << note << "\n";
  if (!failure_message_.empty()) failure_message_ += "\n";
  failure_message_ += os.str();

  // Minimized-reproducer artifact for CI (uploaded on workflow failure).
  if (const char* dir = std::getenv("ROLESHARE_PROP_ARTIFACT_DIR");
      dir != nullptr && *dir != '\0') {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (!ec) {
      const std::filesystem::path path =
          std::filesystem::path(dir) /
          (test_id_ + ".check" + std::to_string(check_index) +
           ".counterexample.txt");
      std::ofstream out(path);
      out << os.str();
    }
  }
}

}  // namespace roleshare::util::proptest
