#include "econ/foundation_schedule.hpp"

#include "util/require.hpp"

namespace roleshare::econ {

std::size_t FoundationSchedule::period_for_round(ledger::Round round) {
  RS_REQUIRE(round >= 1, "rounds are 1-based");
  const std::uint64_t zero_based = (round - 1) / kBlocksPerPeriod;
  return zero_based >= kPeriods ? kPeriods : zero_based + 1;
}

ledger::MicroAlgos FoundationSchedule::period_total(std::size_t period) {
  RS_REQUIRE(period >= 1 && period <= kPeriods, "period in [1, 12]");
  return ledger::algos(
      static_cast<std::int64_t>(kProjectedMillions[period - 1]) * 1'000'000);
}

ledger::MicroAlgos FoundationSchedule::reward_for_round(ledger::Round round) {
  const std::size_t period = period_for_round(round);
  return period_total(period) /
         static_cast<ledger::MicroAlgos>(kBlocksPerPeriod);
}

ledger::MicroAlgos FoundationSchedule::cumulative_through(
    ledger::Round round) {
  RS_REQUIRE(round >= 1, "rounds are 1-based");
  ledger::MicroAlgos total = 0;
  // Whole periods fully elapsed before the round's period.
  const std::size_t period = period_for_round(round);
  for (std::size_t p = 1; p < period; ++p) total += period_total(p);
  const std::uint64_t rounds_into_period =
      round - (static_cast<std::uint64_t>(period) - 1) * kBlocksPerPeriod;
  total += reward_for_round(round) *
           static_cast<ledger::MicroAlgos>(rounds_into_period);
  return total;
}

}  // namespace roleshare::econ
