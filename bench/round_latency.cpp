// P1 — single-run round-engine latency: the within-run parallelism bench.
//
// Unlike the figure benches (many runs fanned out with --threads), this
// measures what the inner executor buys on ONE run at paper-scale node
// counts: the same network simulated for --rounds rounds, once with the
// per-node loops serial (inner-threads=1) and once across the inner pool
// (--inner-threads, default 0 = all hardware threads). The two passes must
// produce bit-identical per-round fractions — the determinism contract —
// and the JSON records both wall times plus the speedup for the perf
// trajectory. On a 4+-core machine at >=100k nodes the expected speedup
// is >1.5x (sortition VRFs, vote verification, per-node tallies and the
// gossip fan-out all scale; the serial remainder is the committee scan and
// chain append).
//
//   $ ./round_latency --nodes=100000 --rounds=3 --inner-threads=0
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <vector>

#include "bench_util.hpp"
#include "sim/aggregators.hpp"
#include "sim/round_engine.hpp"
#include "util/thread_pool.hpp"

using namespace roleshare;

namespace {

struct PassResult {
  std::vector<double> final_fractions;
  std::vector<double> none_fractions;
  /// Full per-node outcome vectors and proposal counts, kept so the
  /// determinism gate compares the complete round result, not just the
  /// derived fractions.
  std::vector<std::vector<sim::NodeOutcome>> outcomes;
  std::vector<std::size_t> proposals;
  double wall_ms = 0.0;
};

PassResult run_pass(std::size_t nodes, std::size_t rounds,
                    std::uint64_t seed, double defection_rate,
                    std::size_t inner_threads) {
  sim::NetworkConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.defection_rate = defection_rate;
  sim::Network net(config);

  const std::size_t workers =
      util::ThreadPool::resolve_thread_count(inner_threads);
  std::optional<util::ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);
  sim::RoundEngine engine(net,
                          consensus::ConsensusParams::scaled_for(
                              net.accounts().total_stake()),
                          pool ? &*pool : nullptr);

  PassResult pass;
  const bench::WallTimer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    sim::RoundResult result = engine.run_round();
    pass.final_fractions.push_back(result.final_fraction);
    pass.none_fractions.push_back(result.none_fraction);
    pass.outcomes.push_back(std::move(result.outcomes));
    pass.proposals.push_back(result.proposals);
  }
  pass.wall_ms = timer.elapsed_ms();
  return pass;
}

}  // namespace

int main(int argc, char** argv) {
  const auto nodes = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "nodes", 100'000));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 3));
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_int(argc, argv, "seed", 404));
  // Unlike the figure benches, the parallel pass defaults to all hardware
  // threads — measuring the speedup is this binary's whole point.
  const auto inner_threads = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "inner-threads", 0));
  const std::size_t workers =
      util::ThreadPool::resolve_thread_count(inner_threads);

  bench::print_header("Round latency",
                      "single-run wall time, serial vs inner-parallel");
  std::printf("nodes=%zu rounds=%zu defection=5%% inner-threads=%zu "
              "(%zu workers; override with --nodes/--rounds/"
              "--inner-threads)\n",
              nodes, rounds, inner_threads, workers);

  std::printf("\nserial pass (inner-threads=1)...\n");
  const PassResult serial = run_pass(nodes, rounds, seed, 0.05, 1);
  std::printf("  wall: %.0f ms (%.0f ms/round)\n", serial.wall_ms,
              serial.wall_ms / static_cast<double>(rounds));

  std::printf("parallel pass (%zu workers)...\n", workers);
  const PassResult parallel = run_pass(nodes, rounds, seed, 0.05,
                                       inner_threads);
  std::printf("  wall: %.0f ms (%.0f ms/round)\n", parallel.wall_ms,
              parallel.wall_ms / static_cast<double>(rounds));

  // Determinism gate: the parallel pass must reproduce the serial pass
  // bit for bit — per-node outcomes and proposal counts included, not
  // just the derived fractions — or the speedup is meaningless.
  bool identical = true;
  for (std::size_t r = 0; r < rounds; ++r) {
    identical = identical &&
                serial.final_fractions[r] == parallel.final_fractions[r] &&
                serial.none_fractions[r] == parallel.none_fractions[r] &&
                serial.proposals[r] == parallel.proposals[r] &&
                serial.outcomes[r] == parallel.outcomes[r];
  }
  const double speedup =
      parallel.wall_ms > 0.0 ? serial.wall_ms / parallel.wall_ms : 0.0;
  std::printf("\nbit-identical aggregates: %s | speedup: %.2fx\n",
              identical ? "yes" : "NO — BUG", speedup);

  // Accumulator memory story at this node count: record every per-node
  // outcome of the serial pass into both reduction backends. The exact
  // matrix grows with nodes x rounds; the streaming sketch must stay at
  // O(rounds) — the state a paper-scale sharded sweep ships per shard.
  const auto exact = sim::make_accumulator(sim::AggBackend::Exact, rounds);
  const auto streaming =
      sim::make_accumulator(sim::AggBackend::Streaming, rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    for (const sim::NodeOutcome outcome : serial.outcomes[r]) {
      const double sample = static_cast<double>(outcome);
      exact->record(r, sample);
      streaming->record(r, sample);
    }
  }
  const double mem_ratio =
      static_cast<double>(exact->memory_bytes()) /
      static_cast<double>(streaming->memory_bytes());
  std::printf("accumulator memory (%zu samples/round): exact %.1f KiB, "
              "streaming %.1f KiB (%.1fx smaller)\n",
              nodes, static_cast<double>(exact->memory_bytes()) / 1024.0,
              static_cast<double>(streaming->memory_bytes()) / 1024.0,
              mem_ratio);

  bench::emit_json("round_latency",
                   {{"nodes", static_cast<double>(nodes)},
                    {"rounds", static_cast<double>(rounds)},
                    {"inner_threads", static_cast<double>(inner_threads)},
                    {"workers", static_cast<double>(workers)},
                    {"wall_ms_serial", serial.wall_ms},
                    {"wall_ms_parallel", parallel.wall_ms},
                    {"speedup", speedup},
                    {"bit_identical", identical ? "yes" : "no"},
                    {"exact_accum_bytes",
                     static_cast<double>(exact->memory_bytes())},
                    {"streaming_accum_bytes",
                     static_cast<double>(streaming->memory_bytes())},
                    {"accum_memory_ratio", mem_ratio},
                    {"wall_ms", serial.wall_ms + parallel.wall_ms}});

  if (!identical) {
    std::fprintf(stderr,
                 "ERROR: inner-parallel aggregates diverged from serial\n");
    return 1;
  }
  std::printf("\nShape check: speedup > 1.5x expected at >=100k nodes on\n"
              "4+ cores; ~1.0x on a single-core machine is normal.\n");
  return 0;
}
