// Reward-scheme interface.
//
// A scheme answers two questions per round: how large a reward B_i it wants
// to withdraw from the pool, and how that B_i is divided among the online
// nodes given the round's role snapshot. The two concrete schemes are the
// Foundation's stake-proportional baseline (Eq 3) and the paper's
// role-based mechanism (Eq 5 + Algorithm 1).
#pragma once

#include <string>
#include <vector>

#include "econ/role_snapshot.hpp"
#include "ledger/types.hpp"

namespace roleshare::econ {

/// One round's reward disbursement.
struct Payouts {
  /// µAlgos per node, indexed like the snapshot.
  std::vector<ledger::MicroAlgos> amounts;
  /// Sum of `amounts` (== the B_i actually paid, up to integer rounding).
  ledger::MicroAlgos total = 0;
};

class RewardScheme {
 public:
  virtual ~RewardScheme() = default;

  virtual std::string name() const = 0;

  /// B_i the scheme wants to disburse in `round` given the snapshot,
  /// µAlgos. The caller clips this against the pool.
  virtual ledger::MicroAlgos required_budget(
      ledger::Round round, const RoleSnapshot& snapshot) = 0;

  /// Splits `budget` µAlgos across nodes. The sum of payouts never exceeds
  /// `budget` (integer floor rounding leaves dust in the pool).
  virtual Payouts distribute(ledger::Round round,
                             const RoleSnapshot& snapshot,
                             ledger::MicroAlgos budget) = 0;
};

}  // namespace roleshare::econ
