// Wire protocol of the shard orchestration service (DESIGN.md §11): the
// framed message grammar the coordinator and its worker agents speak
// over a Unix stream socket.
//
//   stream  := message*
//   message := total_len(u32 LE) frame
//   frame   := util::framed frame (magic "RSOW", version 1) holding
//              EXACTLY ONE section, whose NAME is the message type
//
// Message types and their section payloads (all scalars little-endian,
// strings u32-length-prefixed, exactly as framed_io defines them):
//
//   HELLO     worker -> coordinator, once per connection.
//             u32 worker_id, string config_echo
//             config_echo is the dump of the bench's shard-document
//             header as the WORKER computed it from its own argv — the
//             coordinator refuses a worker whose echo differs from its
//             own header byte for byte (config drift means the worker
//             would compute a different experiment).
//   ASSIGN    coordinator -> worker: run window [run_begin, run_end).
//             u32 window_index, u32 attempt, u64 run_begin, u64 run_end,
//             string spool_path, string resume_path
//             spool_path is THIS attempt's private checkpoint/result
//             file (w<index>.a<attempt>.partial — two attempts never
//             share a file, which is what makes straggler retries safe);
//             resume_path is a previous attempt's checkpoint to resume
//             from, empty for a fresh start.
//   PROGRESS  worker -> coordinator: a checkpoint exists on disk.
//             u32 window_index, u32 attempt, u64 cursor
//             cursor = first run NOT yet executed. Renews the lease and
//             tells the coordinator the attempt's spool file is worth
//             passing as resume_path if this worker dies.
//   DONE      worker -> coordinator: the window's finished partial
//             document is at spool_path.
//             u32 window_index, u32 attempt, u8 store_hit,
//             u64 partial_bytes, string spool_path
//   FAIL      worker -> coordinator: the attempt errored but the worker
//             survives (it stays connected for the next ASSIGN).
//             u32 window_index, u32 attempt, string error
//   SHUTDOWN  coordinator -> worker: no more work; exit cleanly.
//             string reason
//
// decode() dispatches on the section name via Reader::peek_section_name
// and inherits every framed_io guarantee: truncation at any byte,
// trailing bytes, bad magic/version and single-byte payload corruption
// are all named errors (tests/test_orch_wire.cpp walks every prefix and
// flips every byte of every message type). MessageBuffer reassembles
// messages from an arbitrary byte-chunk stream (partial reads are the
// norm on a socket) and bounds the declared length BEFORE buffering, so
// a corrupt length prefix cannot balloon memory.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/framed_io.hpp"

namespace roleshare::orch {

inline constexpr std::uint32_t kWireMagic =
    util::framed::magic4('R', 'S', 'O', 'W');
inline constexpr std::uint16_t kWireVersion = 1;
/// Hard ceiling on one message's frame bytes. HELLO carries a config
/// echo and FAIL an error string; neither approaches this. A length
/// prefix above it is treated as stream corruption, not a request to
/// allocate.
inline constexpr std::uint32_t kMaxMessageBytes = 1u << 20;

enum class MsgType : std::uint8_t {
  Hello,
  Assign,
  Progress,
  Done,
  Fail,
  Shutdown,
};

const char* to_string(MsgType type);

/// One protocol message: a tagged flat struct (only the fields of the
/// active type are meaningful; encode() writes exactly those and
/// decode() fills exactly those).
struct Message {
  MsgType type = MsgType::Hello;
  // HELLO
  std::uint32_t worker_id = 0;
  std::string config_echo;
  // ASSIGN / PROGRESS / DONE / FAIL
  std::uint32_t window_index = 0;
  std::uint32_t attempt = 0;
  // ASSIGN
  std::uint64_t run_begin = 0;
  std::uint64_t run_end = 0;
  std::string spool_path;   // also echoed by DONE
  std::string resume_path;  // empty = fresh start
  // PROGRESS
  std::uint64_t cursor = 0;
  // DONE
  bool store_hit = false;
  std::uint64_t partial_bytes = 0;
  // FAIL
  std::string error;
  // SHUTDOWN
  std::string reason;
};

/// Convenience constructors (the fields each type actually sends).
Message hello(std::uint32_t worker_id, std::string config_echo);
Message assign(std::uint32_t window_index, std::uint32_t attempt,
               std::uint64_t run_begin, std::uint64_t run_end,
               std::string spool_path, std::string resume_path);
Message progress(std::uint32_t window_index, std::uint32_t attempt,
                 std::uint64_t cursor);
Message done(std::uint32_t window_index, std::uint32_t attempt,
             bool store_hit, std::uint64_t partial_bytes,
             std::string spool_path);
Message fail(std::uint32_t window_index, std::uint32_t attempt,
             std::string error);
Message shutdown(std::string reason);

/// Serializes to the on-wire form INCLUDING the u32 length prefix.
std::string encode(const Message& message);

/// Decodes one frame (NO length prefix — the buffer layer strips it).
/// Throws util::framed::Error on any malformation; `origin` names the
/// peer in the error ("worker 2", "coordinator").
Message decode_frame(std::string_view frame, const std::string& origin);

/// Reassembles messages from arbitrary byte chunks. feed() appends;
/// next() pops the earliest complete message or nullopt when more bytes
/// are needed. A length prefix of 0 or > kMaxMessageBytes throws — the
/// stream is corrupt and cannot be resynchronized.
class MessageBuffer {
 public:
  explicit MessageBuffer(std::string origin) : origin_(std::move(origin)) {}

  void feed(std::string_view bytes) { buffer_.append(bytes); }
  std::optional<Message> next();
  /// Bytes buffered but not yet consumed (a nonzero value at EOF means
  /// the peer died mid-message).
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  std::string origin_;
};

/// Blocking send of one message over a fd; throws std::runtime_error on
/// any short/failed write (EINTR retried).
void send_message(int fd, const Message& message);

}  // namespace roleshare::orch
