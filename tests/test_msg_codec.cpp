#include "consensus/msg_codec.hpp"

#include <gtest/gtest.h>

#include "consensus/roles.hpp"
#include "util/rng.hpp"

namespace roleshare::consensus {
namespace {

struct MsgFixture {
  crypto::Hash256 seed = crypto::HashBuilder("mseed").add_u64(1).build();
  crypto::SortitionParams params{3'000, 10'000};
  std::uint64_t round = 6;
  std::uint32_t step = 2;

  std::pair<crypto::KeyPair, crypto::SortitionResult> winner(
      std::uint32_t step_for, std::uint64_t start = 0) const {
    std::uint64_t id = start;
    while (true) {
      const crypto::KeyPair key = crypto::KeyPair::derive(6500, id++);
      const crypto::VrfInput input{round, step_for, seed};
      const auto res = crypto::sortition(key, input, 100, params);
      if (res.selected()) return {key, res};
    }
  }
};

TEST(MsgCodec, VoteRoundTrip) {
  const MsgFixture s;
  const auto [key, res] = s.winner(s.step);
  const crypto::Hash256 value = crypto::HashBuilder("blk").build();
  const Vote vote =
      make_vote(17, key.public_key(), s.round, s.step, value, res);
  const Vote back = decode_vote(encode_vote(vote));
  EXPECT_EQ(back.voter, vote.voter);
  EXPECT_EQ(back.voter_key, vote.voter_key);
  EXPECT_EQ(back.round, vote.round);
  EXPECT_EQ(back.step, vote.step);
  EXPECT_EQ(back.value, vote.value);
  EXPECT_EQ(back.weight, vote.weight);
  // The decoded vote must still verify against the committee sortition.
  EXPECT_TRUE(verify_vote(back, s.seed, 100, s.params));
}

TEST(MsgCodec, VoteRejectsWeightMismatch) {
  const MsgFixture s;
  const auto [key, res] = s.winner(s.step);
  const Vote vote = make_vote(1, key.public_key(), s.round, s.step,
                              crypto::Hash256::zero(), res);
  auto bytes = encode_vote(vote);
  // The weight field sits after tag(1)+voter(4)+key(32)+round(8)+step(4)+
  // value(32); bump it without touching the sortition copy.
  const std::size_t weight_offset = 1 + 4 + 32 + 8 + 4 + 32;
  bytes[weight_offset] ^= 0x01;
  EXPECT_THROW(decode_vote(bytes), DecodeError);
}

TEST(MsgCodec, ProposalRoundTripAndReverify) {
  const MsgFixture s;
  const auto [key, res] = s.winner(kProposerStep);
  const ledger::Block block =
      ledger::Block::make(s.round, crypto::Hash256::zero(),
                          crypto::Hash256::zero(), key.public_key(), {});
  const BlockProposal proposal =
      make_proposal(3, key.public_key(), block, res);
  const BlockProposal back = decode_proposal(encode_proposal(proposal));
  EXPECT_EQ(back.proposer, 3u);
  EXPECT_EQ(back.priority, proposal.priority);
  EXPECT_EQ(back.block_hash(), proposal.block_hash());
  const crypto::VrfInput input{s.round, kProposerStep, s.seed};
  EXPECT_TRUE(verify_proposal(back, input, 100, s.params));
}

TEST(MsgCodec, CredentialRoundTripAndVerify) {
  const MsgFixture s;
  const auto [key, res] = s.winner(kProposerStep);
  const ledger::Block block =
      ledger::Block::make(s.round, crypto::Hash256::zero(),
                          crypto::Hash256::zero(), key.public_key(), {});
  const BlockProposal proposal =
      make_proposal(5, key.public_key(), block, res);
  const Credential credential = Credential::for_proposal(proposal, s.round);

  const Credential back = decode_credential(encode_credential(credential));
  EXPECT_EQ(back.proposer, 5u);
  EXPECT_EQ(back.round, s.round);
  EXPECT_EQ(back.priority, proposal.priority);
  const crypto::VrfInput input{s.round, kProposerStep, s.seed};
  EXPECT_TRUE(back.verify(input, 100, s.params));
}

TEST(MsgCodec, CredentialRejectsInflatedPriority) {
  const MsgFixture s;
  const auto [key, res] = s.winner(kProposerStep);
  const ledger::Block block =
      ledger::Block::make(s.round, crypto::Hash256::zero(),
                          crypto::Hash256::zero(), key.public_key(), {});
  Credential credential = Credential::for_proposal(
      make_proposal(5, key.public_key(), block, res), s.round);
  credential.priority += 1;
  const crypto::VrfInput input{s.round, kProposerStep, s.seed};
  EXPECT_FALSE(credential.verify(input, 100, s.params));
}

TEST(MsgCodec, CrossTypeTagsRejected) {
  const MsgFixture s;
  const auto [key, res] = s.winner(s.step);
  const Vote vote = make_vote(1, key.public_key(), s.round, s.step,
                              crypto::Hash256::zero(), res);
  const auto vote_bytes = encode_vote(vote);
  EXPECT_THROW(decode_proposal(vote_bytes), DecodeError);
  EXPECT_THROW(decode_credential(vote_bytes), DecodeError);
}

TEST(MsgCodec, FuzzedInputsNeverCrash) {
  util::Rng rng(777);
  for (int i = 0; i < 400; ++i) {
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 256));
    std::vector<std::uint8_t> junk(len);
    for (auto& b : junk)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    for (int variant = 0; variant < 3; ++variant) {
      try {
        if (variant == 0) (void)decode_vote(junk);
        if (variant == 1) (void)decode_proposal(junk);
        if (variant == 2) (void)decode_credential(junk);
      } catch (const DecodeError&) {
      }
    }
  }
  SUCCEED();
}

TEST(MsgCodec, GossipedVoteSurvivesCodecChain) {
  // Encode -> decode -> re-encode must be byte-identical (relays forward
  // exactly what they received; hashes of message bytes are stable).
  const MsgFixture s;
  const auto [key, res] = s.winner(s.step);
  const Vote vote = make_vote(9, key.public_key(), s.round, s.step,
                              crypto::HashBuilder("v").build(), res);
  const auto once = encode_vote(vote);
  const auto twice = encode_vote(decode_vote(once));
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace roleshare::consensus
