// Reduction phase (Fig 1-c): converts "agree on one of many proposed
// blocks" into "agree on one block hash or the empty hash" in exactly two
// voting steps. These are the pure per-node decision rules; the simulator
// supplies each node's received-vote view.
#pragma once

#include <optional>
#include <span>

#include "consensus/votes.hpp"

namespace roleshare::consensus {

/// Step 1: a committee member votes for the hash of the highest-priority
/// proposal it received, or the empty hash if it received none.
crypto::Hash256 reduction_step1_value(
    const std::optional<crypto::Hash256>& best_proposal_hash,
    const crypto::Hash256& empty_hash);

/// Step 2: a committee member votes for the value that crossed the step
/// quorum in its view of step-1 votes, or the empty hash otherwise.
crypto::Hash256 reduction_step2_value(std::span<const Vote> step1_votes,
                                      double quorum,
                                      const crypto::Hash256& empty_hash);

/// Output of the reduction phase for one node: the value that crossed the
/// quorum in its view of step-2 votes, or the empty hash. This value seeds
/// BinaryBA*.
crypto::Hash256 reduction_output(std::span<const Vote> step2_votes,
                                 double quorum,
                                 const crypto::Hash256& empty_hash);

}  // namespace roleshare::consensus
