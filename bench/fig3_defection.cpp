// E1 — Figure 3 (a)-(f): percentage of nodes extracting final / tentative /
// no blocks per round, for defection rates 5%..30%.
//
// Workload: N nodes, stakes U(1,50), gossip fan-out 5, defectors chosen
// uniformly at random, trimmed-mean (20%) aggregation over independent runs
// — the paper's §III-C methodology. Expected shape: low defection leaves
// most nodes on final blocks; >=15% pushes the network into tentative /
// no-block regimes; ~30% collapses consensus within the first rounds.
//
// Runs execute on the shared ExperimentRunner engine: --threads=N spreads
// the Monte-Carlo runs across N cores (0 = all) with bit-identical output.
// --inner-threads=N instead parallelizes each run's per-node round-engine
// loops — the knob for single-run latency at large --nodes; also
// bit-identical, and forced serial while --threads is parallel.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/defection_experiment.hpp"

using namespace roleshare;

int main(int argc, char** argv) {
  const auto nodes = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "nodes", 400));
  const auto runs =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "runs", 8));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 30));
  const std::size_t threads = bench::arg_threads(argc, argv);
  const std::size_t inner_threads = bench::arg_inner_threads(argc, argv);

  bench::print_header("Figure 3", "block extraction vs. defection rate");
  std::printf("nodes=%zu runs=%zu rounds=%zu threads=%zu inner-threads=%zu "
              "stakes=U(1,50) fanout=5 (override with "
              "--nodes/--runs/--rounds/--threads/--inner-threads)\n",
              nodes, runs, rounds, threads, inner_threads);

  const double rates[] = {0.05, 0.10, 0.15, 0.20, 0.25, 0.30};
  const char panel[] = {'a', 'b', 'c', 'd', 'e', 'f'};

  const bench::WallTimer timer;
  bench::JsonFields json_fields = {
      {"nodes", static_cast<double>(nodes)},
      {"runs", static_cast<double>(runs)},
      {"rounds", static_cast<double>(rounds)},
      {"threads", static_cast<double>(threads)},
      {"inner_threads", static_cast<double>(inner_threads)}};

  for (std::size_t i = 0; i < 6; ++i) {
    sim::DefectionExperimentConfig config;
    config.network.node_count = nodes;
    config.network.seed = 42 + i;
    config.network.defection_rate = rates[i];
    // Mild weak-synchrony churn so the tentative-then-recover pattern the
    // paper highlights (Fig 3-c, rounds 17-20) can emerge; degradation
    // deepens with defection as in the paper's narrative.
    config.network.synchrony.degrade_probability = 0.05 + rates[i] / 2.0;
    config.network.synchrony.degraded_delay_factor = 25.0;
    config.network.synchrony.max_degraded_rounds = 2;
    config.runs = runs;
    config.rounds = rounds;
    config.threads = threads;
    config.inner_threads = inner_threads;

    const sim::DefectionSeries series = sim::run_defection_experiment(config);

    std::printf("\n--- Fig 3(%c): defection rate %.0f%% ---\n", panel[i],
                rates[i] * 100);
    std::printf("%6s %10s %12s %10s\n", "round", "final%", "tentative%",
                "none%");
    for (std::size_t r = 0; r < series.rounds.size(); ++r) {
      const sim::RoundAggregate& agg = series.rounds[r];
      std::printf("%6zu %10.1f %12.1f %10.1f\n", r + 1, agg.final_pct,
                  agg.tentative_pct, agg.none_pct);
    }
    double mean_final = 0;
    for (const auto& agg : series.rounds) mean_final += agg.final_pct;
    mean_final /= static_cast<double>(series.rounds.size());
    std::printf("mean final%% = %.1f | runs with chain progress = %.0f%%\n",
                mean_final, series.runs_with_progress * 100);
    json_fields.emplace_back(
        "mean_final_pct_" + std::to_string(static_cast<int>(rates[i] * 100)),
        mean_final);
  }

  json_fields.emplace_back("wall_ms", timer.elapsed_ms());
  bench::emit_json("fig3_defection", json_fields);

  std::printf("\nShape check: mean final%% must fall monotonically with the\n"
              "defection rate, with collapse (<50%% final) by 25-30%%.\n");
  return 0;
}
