// Constant-memory statistical sketches for the streaming accumulator
// backend (sim/aggregators.hpp).
//
// The paper's figures are reductions (20%-trimmed mean / percentiles,
// §III-C) over Monte-Carlo runs. The exact backend stores every sample —
// O(runs) per round — which caps paper-scale sweeps by memory. These
// sketches keep per-round state independent of the run count:
//
//   P2Quantile      — Jain & Chlamtac's P² marker algorithm: one quantile
//                     estimate from five markers, no sample storage.
//   ReservoirSample — uniform fixed-capacity sample (Algorithm R) on a
//                     deterministic stream; exact while the sample still
//                     fits, an unbiased subsample after. Mergeable, so
//                     shard partials can fold (P² cannot merge — see
//                     StreamingAccumulator for how the two compose).
//
// Error bound (tested in test_streaming_stats.cpp): with capacity K and
// n > K samples, a reservoir quantile/trimmed-mean estimate has standard
// error ~ sqrt(p(1-p)/K) in rank space — capacity 256 keeps figure-scale
// series within a few percent of exact. Everything here is deterministic:
// the same insertion (and merge) sequence reproduces the same state bit
// for bit, preserving the experiment engine's reproducibility contract.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace roleshare::util {

/// P² (piecewise-parabolic) single-quantile estimator
/// [Jain & Chlamtac, CACM 1985]. Tracks quantile q in (0, 1) with five
/// markers; exact until five observations arrive, then O(1) per sample.
class P2Quantile {
 public:
  /// q in (0, 1) — e.g. 0.5 for the median.
  explicit P2Quantile(double q);

  void add(double x);
  std::size_t count() const { return count_; }

  /// Current estimate. Exact for fewer than six observations; requires at
  /// least one.
  double estimate() const;

  double quantile() const { return q_; }

  /// Raw marker state, exposed for serialization (sim shard partials).
  struct State {
    double q = 0.5;
    std::size_t count = 0;
    std::array<double, 5> heights{};    // marker values
    std::array<double, 5> positions{};  // actual marker positions (1-based)
    std::array<double, 5> desired{};    // desired marker positions
  };
  State state() const;
  static P2Quantile from_state(const State& s);

 private:
  double q_;
  std::size_t count_ = 0;
  std::array<double, 5> heights_{};
  std::array<double, 5> positions_{};
  std::array<double, 5> desired_{};
  std::array<double, 5> increments_{};
};

/// Fixed-capacity uniform random sample of a stream (Vitter's
/// Algorithm R) on a deterministic private Rng stream. While the stream
/// still fits (`exact()`), the reservoir IS the stream and every derived
/// statistic is exact; beyond that it is an unbiased subsample.
///
/// Every probabilistic decision (replacement index, merge source pick)
/// consumes exactly ONE raw 64-bit draw from the private stream, and the
/// draw count is part of the serializable state — so `from_state` can
/// fast-forward the stream and reproduce a reservoir with ANY history
/// (adds, merges, round-trips) exactly.
class ReservoirSample {
 public:
  /// capacity >= 1; `seed` fixes the private replacement stream, so two
  /// reservoirs fed the same sequence are bit-identical.
  ReservoirSample(std::size_t capacity, std::uint64_t seed);

  void add(double x);

  std::size_t capacity() const { return capacity_; }
  /// Total samples offered (not retained) so far.
  std::size_t seen() const { return seen_; }
  /// True while every offered sample is still retained.
  bool exact() const { return seen_ <= capacity_; }
  const std::vector<double>& samples() const { return samples_; }

  /// Folds `other` in so the result is (approximately) a uniform sample
  /// of the concatenated streams, weighted by the two `seen()` counts.
  /// Exact concatenation while the union still fits the capacity.
  /// Deterministic: consumes this reservoir's private stream.
  void merge(const ReservoirSample& other);

  /// Serialization hooks for shard partials: capacity, seed, seen/draw
  /// counts and the retained samples reproduce the state exactly.
  std::uint64_t seed_material() const { return seed_; }
  /// Raw draws consumed from the private stream so far.
  std::uint64_t draws() const { return draws_; }
  static ReservoirSample from_state(std::size_t capacity, std::uint64_t seed,
                                    std::uint64_t seen, std::uint64_t draws,
                                    std::vector<double> samples);

 private:
  /// The single entry point to the private stream — keeps draws_ in
  /// lockstep so from_state can replay by discarding draws_ outputs.
  std::uint64_t next_raw();

  std::size_t capacity_;
  std::uint64_t seed_;
  std::uint64_t seen_ = 0;
  std::uint64_t draws_ = 0;
  std::vector<double> samples_;
  Rng rng_;
};

/// Streaming wealth-concentration sketch over a drifting integer stake
/// distribution (the long-horizon economy series — DESIGN.md §10).
///
/// Stakes live in a fixed log-bucketed histogram: bucket 0 holds stake 0,
/// and every octave [2^k, 2^(k+1)) is split into 8 linear sub-buckets, so
/// a bucket spans at most 12.5% of its lower edge. Each bucket keeps a
/// count and an exact integer stake sum, which makes every mutation O(1)
/// and every query O(buckets), independent of population size — the only
/// cost profile a per-round metric inside an O(committee) round path can
/// afford.
///
/// gini() and top_share() are computed on the *quantized* distribution
/// (every stake in a bucket treated as the bucket mean). That is exact
/// whenever a bucket holds equal stakes and otherwise biased by less than
/// the bucket width (< 12.5% of stake value, far less in rank space);
/// test_streaming_stats.cpp bounds the error against exact references.
class StakeConcentration {
 public:
  StakeConcentration();

  /// Number of histogram buckets (bucket 0 + 8 per octave of int64 range).
  static constexpr std::size_t kBuckets = 1 + 8 * 63;

  void add(std::int64_t stake);
  void remove(std::int64_t stake);
  /// remove(old) + add(new) — the per-payout delta path.
  void update(std::int64_t old_stake, std::int64_t new_stake);

  std::size_t count() const { return count_; }
  std::int64_t total() const { return total_; }

  /// Gini coefficient of the quantized distribution in [0, 1); 0 when
  /// empty or when all stake is zero.
  double gini() const;

  /// Share of total stake held by the richest ceil(fraction * count)
  /// holders, fraction in (0, 1]; 0 when empty or all-zero.
  double top_share(double fraction) const;

 private:
  static std::size_t bucket_of(std::int64_t stake);

  std::vector<std::size_t> counts_;
  std::vector<std::int64_t> sums_;
  std::size_t count_ = 0;
  std::int64_t total_ = 0;
};

/// Streaming point-biserial correlation between a fixed binary cohort
/// label (defector / non-defector) and wealth. Keeps per-cohort count,
/// stake sum and a global sum of squares, all updated in O(1) per stake
/// delta. Sums of squares are doubles: exact while stake^2 < 2^53 (every
/// workload here — long-horizon stakes are tens to thousands of Algos),
/// documented rounding beyond.
class CohortWealthCorrelation {
 public:
  void add(std::int64_t stake, bool in_cohort);
  void remove(std::int64_t stake, bool in_cohort);
  void update(std::int64_t old_stake, std::int64_t new_stake,
              bool in_cohort);

  std::size_t count() const { return count_[0] + count_[1]; }
  std::size_t cohort_count() const { return count_[1]; }

  /// Point-biserial correlation in [-1, 1]: negative when the cohort is
  /// poorer than the rest. 0 when either cohort is empty or wealth has
  /// zero variance.
  double correlation() const;

 private:
  std::size_t count_[2] = {0, 0};
  double sum_[2] = {0.0, 0.0};
  double sum_sq_ = 0.0;
};

}  // namespace roleshare::util
