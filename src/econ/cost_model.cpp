#include "econ/cost_model.hpp"

#include "util/require.hpp"

namespace roleshare::econ {

void TaskCosts::validate() const {
  for (const double c : {cve, cse, cso, cvs, cbl, cgo, cbs, cvo, cvc})
    RS_REQUIRE(c >= 0.0, "task costs must be non-negative");
}

CostModel::CostModel(TaskCosts tasks) : tasks_(tasks) { tasks.validate(); }

CostModel::CostModel(TaskCosts tasks, bool direct, double cl, double cm,
                     double ck, double cso)
    : tasks_(tasks),
      direct_(direct),
      direct_cl_(cl),
      direct_cm_(cm),
      direct_ck_(ck),
      direct_cso_(cso) {}

CostModel CostModel::from_role_costs(double c_leader, double c_committee,
                                     double c_other, double c_sortition) {
  RS_REQUIRE(c_sortition >= 0.0, "sortition cost");
  RS_REQUIRE(c_other >= c_sortition, "c_K >= c_so (cooperation includes sortition)");
  RS_REQUIRE(c_committee >= c_other, "c_M >= c_K");
  RS_REQUIRE(c_leader >= c_other, "c_L >= c_K");
  return CostModel(TaskCosts{}, true, c_leader, c_committee, c_other,
                   c_sortition);
}

double CostModel::fixed_cost() const {
  if (direct_) return direct_ck_;
  return tasks_.cve + tasks_.cse + tasks_.cso + tasks_.cgo + tasks_.cvs +
         tasks_.cvc;
}

double CostModel::cooperation_cost(consensus::Role role) const {
  switch (role) {
    case consensus::Role::Leader:
      return leader_cost();
    case consensus::Role::Committee:
      return committee_cost();
    case consensus::Role::Other:
      return other_cost();
  }
  RS_ENSURE(false, "unknown role");
}

double CostModel::leader_cost() const {
  if (direct_) return direct_cl_;
  return fixed_cost() + tasks_.cbl;
}

double CostModel::committee_cost() const {
  if (direct_) return direct_cm_;
  return fixed_cost() + tasks_.cbs + tasks_.cvo;
}

double CostModel::other_cost() const { return fixed_cost(); }

double CostModel::defection_cost() const {
  return direct_ ? direct_cso_ : tasks_.cso;
}

bool CostModel::role_performs(consensus::Role role, std::string_view task) {
  // Table II: leaders do everything except block selection and voting;
  // committee members do everything except block proposition; others do
  // only the fixed-cost tasks.
  const bool fixed = task == "transaction_verification" ||
                     task == "seed_generation" || task == "sortition" ||
                     task == "verify_sortition_proof" || task == "gossiping" ||
                     task == "vote_counting";
  switch (role) {
    case consensus::Role::Leader:
      return fixed || task == "block_proposition";
    case consensus::Role::Committee:
      return fixed || task == "block_selection" || task == "vote";
    case consensus::Role::Other:
      return fixed;
  }
  return false;
}

}  // namespace roleshare::econ
