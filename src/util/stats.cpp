#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace roleshare::util {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double sq = 0.0;
  for (const double x : xs) sq += (x - m) * (x - m);
  return std::sqrt(sq / static_cast<double>(xs.size() - 1));
}

double trimmed_mean(std::vector<double> xs, double trim_fraction) {
  RS_REQUIRE(trim_fraction >= 0.0 && trim_fraction < 0.5,
             "trim fraction in [0, 0.5)");
  RS_REQUIRE(!xs.empty(), "trimmed mean of empty sample");
  std::sort(xs.begin(), xs.end());
  const auto cut = static_cast<std::size_t>(
      std::floor(trim_fraction * static_cast<double>(xs.size())));
  const std::size_t keep = xs.size() - 2 * cut;
  if (keep == 0) return xs[xs.size() / 2];  // degenerate: fall back to median
  double sum = 0.0;
  for (std::size_t i = cut; i < cut + keep; ++i) sum += xs[i];
  return sum / static_cast<double>(keep);
}

double percentile(std::vector<double> xs, double p) {
  RS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile in [0, 100]");
  RS_REQUIRE(!xs.empty(), "percentile of empty sample");
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double min_of(const std::vector<double>& xs) {
  RS_REQUIRE(!xs.empty(), "min of empty sample");
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  RS_REQUIRE(!xs.empty(), "max of empty sample");
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(const std::vector<double>& xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.p25 = percentile(xs, 25.0);
  s.median = percentile(xs, 50.0);
  s.p75 = percentile(xs, 75.0);
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * static_cast<double>(other.n_) / total;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

RunningStats RunningStats::from_state(std::size_t n, double mean, double m2,
                                      double min, double max) {
  RunningStats s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.min_ = min;
  s.max_ = max;
  return s;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace roleshare::util
