#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "gen/domain_gen.hpp"
#include "util/proptest.hpp"

namespace roleshare::util::json {
namespace {

TEST(Json, ScalarRoundTrips) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-1.5e3").as_number(), -1500.0);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(Json, DoublesRoundTripBitwise) {
  // %.17g must reproduce every finite binary64 exactly — the property
  // the exact-backend shard workflow's bit-identity rests on.
  const double values[] = {0.1 + 0.2,
                           1.0 / 3.0,
                           6.02214076e23,
                           -5e-324,  // min subnormal
                           std::numeric_limits<double>::max(),
                           83.333333333333329};
  for (const double v : values) {
    const Value round_tripped = parse(Value(v).dump());
    EXPECT_EQ(round_tripped.as_number(), v);  // bitwise for finite doubles
  }
}

TEST(Json, NonFiniteDumpsAsNull) {
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, NestedDocumentRoundTrips) {
  Value doc = Value::object();
  doc.set("name", "fig3");
  doc.set("runs", 8);
  Value rows = Value::array();
  for (int i = 0; i < 3; ++i) {
    Value row = Value::array();
    row.push_back(i * 1.5);
    row.push_back(Value());  // null (empty-round NaN convention)
    rows.push_back(std::move(row));
  }
  doc.set("rows", std::move(rows));
  doc.set("flags", Value(true));

  const Value parsed = parse(doc.dump());
  EXPECT_EQ(parsed.at("name").as_string(), "fig3");
  EXPECT_EQ(parsed.at("runs").as_size(), 8u);
  const auto& parsed_rows = parsed.at("rows").as_array();
  ASSERT_EQ(parsed_rows.size(), 3u);
  EXPECT_DOUBLE_EQ(parsed_rows[2].as_array()[0].as_number(), 3.0);
  EXPECT_TRUE(parsed_rows[0].as_array()[1].is_null());
  EXPECT_TRUE(parsed.at("flags").as_bool());
  // Insertion order is preserved, so dumps are deterministic.
  EXPECT_EQ(parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, StringEscapesRoundTrip) {
  const Value v(std::string("a\"b\\c\nd\te\x01"));
  const Value parsed = parse(v.dump());
  EXPECT_EQ(parsed.as_string(), v.as_string());
}

TEST(Json, UnicodeEscapesDecodeToUtf8) {
  // BMP code points: direct \uXXXX, emitted as UTF-8.
  EXPECT_EQ(parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(parse("\"\\u00e9\"").as_string(), "\xC3\xA9");        // é
  EXPECT_EQ(parse("\"\\u20AC\"").as_string(), "\xE2\x82\xAC");    // €
  // Highest BMP code point outside the surrogate range.
  EXPECT_EQ(parse("\"\\uFFFF\"").as_string(), "\xEF\xBF\xBF");
  // Supplementary plane via a surrogate pair: U+1F600 (😀) and the
  // extremes of the 4-byte range.
  EXPECT_EQ(parse("\"\\uD83D\\uDE00\"").as_string(), "\xF0\x9F\x98\x80");
  EXPECT_EQ(parse("\"\\uD800\\uDC00\"").as_string(),
            "\xF0\x90\x80\x80");  // U+10000
  EXPECT_EQ(parse("\"\\uDBFF\\uDFFF\"").as_string(),
            "\xF4\x8F\xBF\xBF");  // U+10FFFF
  // Lower-case surrogate digits work too.
  EXPECT_EQ(parse("\"\\ud83d\\ude00\"").as_string(), "\xF0\x9F\x98\x80");
  // Round trip: the decoded UTF-8 passes through dump() verbatim (the
  // writer only escapes control characters), so parse(dump(x)) == x.
  const Value v = parse("\"pre \\uD83D\\uDE00 post \\u00e9\"");
  EXPECT_EQ(parse(v.dump()).as_string(), v.as_string());
}

TEST(Json, LoneAndInvalidSurrogatesRejectedWithOffset) {
  // Lone high surrogate: end of string, non-escape follower, wrong
  // escape kind, and a non-surrogate \uXXXX follower.
  const char* lone[] = {
      "\"\\uD800\"",          "\"\\uD800x\"",      "\"\\uD800\\n\"",
      "\"\\uD800\\u0041\"",   "\"\\uDBFF\"",
      // Lone low surrogate, in both positions.
      "\"\\uDC00\"",          "\"\\uDFFF\\uD800\"",
      // Truncated second half of a pair.
      "\"\\uD800\\u\"",       "\"\\uD800\\uD8\"",
  };
  for (const char* text : lone) {
    EXPECT_THROW(parse(text), std::invalid_argument) << text;
  }
  // The error carries the byte offset (the parser's fail() prefix).
  try {
    parse("\"ab\\uDC00\"");
    FAIL() << "lone low surrogate accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("surrogate"), std::string::npos);
  }
}

TEST(Json, WhitespaceTolerated) {
  const Value v = parse("  {\n  \"a\" : [ 1 , 2 ] ,\n \"b\": {} }\n");
  EXPECT_EQ(v.at("a").as_array().size(), 2u);
  EXPECT_TRUE(v.at("b").as_object().empty());
}

TEST(Json, MalformedInputThrows) {
  EXPECT_THROW(parse(""), std::invalid_argument);
  EXPECT_THROW(parse("{"), std::invalid_argument);
  EXPECT_THROW(parse("[1,]"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\":1,}"), std::invalid_argument);
  EXPECT_THROW(parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(parse("nul"), std::invalid_argument);
  EXPECT_THROW(parse("1 2"), std::invalid_argument);  // trailing token
  EXPECT_THROW(parse("{\"a\" 1}"), std::invalid_argument);
}

TEST(Json, NonFiniteRoundTripsToNullEverywhere) {
  // The empty-round NaN convention: non-finite numbers dump as null at
  // any nesting depth, and the null parses back as null — never as 0.0.
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  Value doc = Value::object();
  Value row = Value::array();
  row.push_back(nan);
  row.push_back(-inf);
  row.push_back(1.5);
  doc.set("series", std::move(row));
  doc.set("mean", inf);
  EXPECT_EQ(doc.dump(), "{\"series\":[null,null,1.5],\"mean\":null}");
  const Value parsed = parse(doc.dump());
  EXPECT_TRUE(parsed.at("series").as_array()[0].is_null());
  EXPECT_TRUE(parsed.at("mean").is_null());
  EXPECT_DOUBLE_EQ(parsed.at("series").as_array()[2].as_number(), 1.5);
  // Round-tripping again is a fixpoint.
  EXPECT_EQ(parse(doc.dump()).dump(), doc.dump());
}

TEST(Json, DeepNestingGuardRejectsInsteadOfOverflowing) {
  // Recursive-descent parsing consumes stack per level; pathological
  // input like 100k open brackets must raise, not crash.
  const std::string deep_arrays(100'000, '[');
  EXPECT_THROW(parse(deep_arrays), std::invalid_argument);
  std::string deep_objects;
  for (int i = 0; i < 100'000; ++i) deep_objects += "{\"a\":";
  EXPECT_THROW(parse(deep_objects), std::invalid_argument);
  // Reasonable nesting (shard partials use a handful of levels) parses.
  std::string ok = "1";
  for (int i = 0; i < 64; ++i) ok = "[" + ok + "]";
  EXPECT_NO_THROW(parse(ok));
  try {
    parse(std::string(300, '['));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("nested deeper"),
              std::string::npos) << e.what();
  }
}

TEST(Json, DuplicateObjectKeysRejected) {
  EXPECT_THROW(parse("{\"a\":1,\"a\":2}"), std::invalid_argument);
  EXPECT_THROW(parse("{\"a\":1,\"b\":{\"x\":0,\"x\":1}}"),
               std::invalid_argument);
  try {
    parse("{\"run_begin\":0,\"run_begin\":4}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key "
                                         "\"run_begin\""),
              std::string::npos) << e.what();
  }
  // Same key on different objects is fine.
  EXPECT_NO_THROW(parse("{\"a\":{\"x\":1},\"b\":{\"x\":2}}"));
}

TEST(Json, EveryTruncationOfADocumentThrows) {
  // Fuzz-ish: an object document cut at any byte is malformed (the outer
  // brace never closes), so parse must throw at every proper prefix —
  // the "shard worker died mid-write" failure mode.
  Value doc = Value::object();
  doc.set("kind", "defection");
  doc.set("values", Value::array());
  Value row = Value::array();
  row.push_back(0.1 + 0.2);
  row.push_back(Value());
  row.push_back(true);
  doc.set("row", std::move(row));
  doc.set("nested", parse("{\"a\":[1,[2,{\"b\":\"c\\n\"}]]}"));
  const std::string text = doc.dump();
  ASSERT_GT(text.size(), 40u);
  for (std::size_t len = 0; len < text.size(); ++len) {
    EXPECT_THROW(parse(text.substr(0, len)), std::invalid_argument)
        << "prefix length " << len << ": " << text.substr(0, len);
  }
  EXPECT_NO_THROW(parse(text));
}

TEST(Json, MalformedNumberAndEscapeTables) {
  // Table-driven oddballs the partial payloads can hit via hand-edited
  // or corrupted files.
  const char* malformed[] = {
      "-",      "1e",     "--1",    "0x10",   "1.2.3",
      "[1,,2]", "{,}",    "\"\\q\"", "\"\\u12\"", "\"\\u12zz\"", "tru",
      "[01az]", "nan",    "Infinity"};
  for (const char* text : malformed) {
    EXPECT_THROW(parse(text), std::invalid_argument) << text;
  }
  // Exotic-but-valid numbers survive.
  EXPECT_DOUBLE_EQ(parse("-0.0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse("1e-3").as_number(), 0.001);
  EXPECT_DOUBLE_EQ(parse("2E+2").as_number(), 200.0);
}

TEST(Json, AccessorsRejectKindMismatch) {
  const Value v = parse("{\"a\": 1}");
  EXPECT_THROW(v.at("a").as_string(), std::invalid_argument);
  EXPECT_THROW(v.as_array(), std::invalid_argument);
  EXPECT_THROW(v.at("missing"), std::invalid_argument);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_THROW(parse("-1").as_size(), std::invalid_argument);
  EXPECT_THROW(parse("1.5").as_size(), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Fuzz loops over the tests/gen/ domain generators (the full property
// suite lives in tests/prop/prop_json.cpp under the `prop` ctest label;
// these quick sweeps keep the fuzz surface inside the default binary).

// dump() output always re-parses, and re-dumps to the same bytes — for
// arbitrary generated trees, not just the handwritten cases above.
PROP_TEST_WITH_PARAMS(Json, FuzzDumpAlwaysReparses, 300) {
  prop.check(
      roleshare::testgen::json_value(3),
      [](const Value& v) {
        const std::string text = v.dump();
        const Value back = parse(text);  // must not throw
        return back.dump() == text;
      },
      [](const Value& v) { return v.dump(); });
}

// parse() on arbitrary byte soup either throws std::invalid_argument or
// yields a value whose dump re-parses — it never crashes and never
// returns something outside the dump/parse closure.
PROP_TEST_WITH_PARAMS(Json, FuzzParseNeverCrashesOnByteSoup, 500) {
  prop.check(roleshare::testgen::byte_string(32), [](const std::string& s) {
    try {
      const Value v = parse(s);
      const Value again = parse(v.dump());
      return again.dump() == v.dump();
    } catch (const std::invalid_argument&) {
      return true;  // rejection is a valid outcome; crashing is not
    }
  });
}

}  // namespace
}  // namespace roleshare::util::json
