#!/usr/bin/env python3
"""Per-module line-coverage gate over gcov JSON output.

Usage:
    scripts/check_coverage.py BUILD_DIR [--floor MODULE=PCT ...] [--verbose]

Expects BUILD_DIR to hold .gcda files from a run of a build configured
with -DROLESHARE_COVERAGE=ON (gcc --coverage instrumentation). Invokes
`gcov --json-format --stdout` on every .gcda, merges execution counts
per source line, then checks aggregate line coverage for each module
(a directory under src/) against its floor. Exits non-zero if any
module with a floor falls below it.

Only first-party sources under src/ count; headers pulled in from the
system or from tests/ are ignored. A line is covered if any test binary
executed it at least once.
"""

import argparse
import collections
import json
import os
import subprocess
import sys

# Aggregate line-coverage floors, in percent. Measured baseline is
# 95-99% per module (full suite incl. property tests, gcc 12); floors
# sit several points below so the gate catches real regressions (a new
# module landing untested) without flaking on minor refactors or
# compiler-version line-accounting drift.
#
# A key with a slash ("util/framed_io") is file-scoped: it gates the
# aggregate of src/<key>.{hpp,cpp} alone, on top of whatever its module
# floor requires. Used for subsystems whose failure modes are silent
# (serialization, caching) and therefore must not coast on a forgiving
# module-wide average.
DEFAULT_FLOORS = {
    "consensus": 90.0,
    "econ": 90.0,
    "sim": 88.0,
    "util": 85.0,
    "util/framed_io": 90.0,
    "sim/result_store": 90.0,
    "sim/partial_codec": 90.0,
    # Sparse round path (PR 9): the stake index and sampled-round core
    # carry the dense==sparse bit-identity contract, and the long-horizon
    # payload carries the shard-merge contract — silent-failure subsystems
    # gated file-scoped like the codecs above.
    "util/stake_index": 92.0,
    "util/alias_sampler": 90.0,
    "util/streaming_stats": 90.0,
    "sim/sampled_round": 90.0,
    "sim/longhorizon": 90.0,
    "econ/sparse_payout": 90.0,
    # Shard orchestration service (PR 10): a mis-decoded wire message or
    # a mis-scheduled window corrupts a series without any test failing
    # downstream, so the codec and the scheduling state machines are
    # gated file-scoped. (Forked workers dump their counters through
    # orch::hard_exit; measured: wire 97%, coordinator 87%, worker 69% —
    # the worker remainder is verbose logging and rare error branches.)
    "orch": 75.0,
    "orch/wire": 90.0,
    "orch/coordinator": 80.0,
    "orch/worker": 60.0,
}


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def gcov_json(gcda_path):
    """Run gcov on one .gcda and yield its per-file JSON records."""
    gcda_path = os.path.abspath(gcda_path)
    # Run from the .gcda's own directory so gcov finds the .gcno twin.
    proc = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.basename(gcda_path)],
        capture_output=True,
        text=True,
        cwd=os.path.dirname(gcda_path),
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"gcov failed on {gcda_path}:\n{proc.stderr.strip()}"
        )
    # One JSON document per line of stdout (gcov emits one per .gcno).
    for line in proc.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        yield json.loads(line)


def module_of(src_root, file_path):
    """Map an absolute source path to its module name, or None."""
    rel = os.path.relpath(os.path.abspath(file_path), src_root)
    if rel.startswith(".."):
        return None
    parts = rel.split(os.sep)
    if len(parts) < 2 or parts[0] != "src":
        return None
    return parts[1]


def file_scope_of(src_root, file_path):
    """Map src/util/framed_io.cpp (or .hpp) to "util/framed_io", or None."""
    rel = os.path.relpath(os.path.abspath(file_path), src_root)
    if rel.startswith(".."):
        return None
    parts = rel.split(os.sep)
    if len(parts) < 3 or parts[0] != "src":
        return None
    stem, _ = os.path.splitext(parts[-1])
    return "/".join(parts[1:-1] + [stem])


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("build_dir", help="build tree containing .gcda files")
    parser.add_argument(
        "--floor",
        action="append",
        default=[],
        metavar="MODULE=PCT",
        help="override a module floor, e.g. --floor sim=75",
    )
    parser.add_argument("--verbose", action="store_true",
                        help="print per-file coverage")
    args = parser.parse_args()

    floors = dict(DEFAULT_FLOORS)
    for spec in args.floor:
        module, _, pct = spec.partition("=")
        if not pct:
            parser.error(f"bad --floor spec: {spec!r}")
        floors[module] = float(pct)

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

    gcda_files = sorted(find_gcda(args.build_dir))
    if not gcda_files:
        print(
            f"error: no .gcda files under {args.build_dir} — configure with "
            "-DROLESHARE_COVERAGE=ON and run the tests first",
            file=sys.stderr,
        )
        return 2

    # hits[source_path][line_number] = total execution count
    hits = collections.defaultdict(collections.Counter)
    for gcda in gcda_files:
        for doc in gcov_json(gcda):
            # gcov resolves sources relative to the compile dir.
            base = doc.get("current_working_directory", "")
            for file_rec in doc.get("files", []):
                path = file_rec["file"]
                if not os.path.isabs(path):
                    path = os.path.join(base, path)
                path = os.path.abspath(path)
                if module_of(src_root, path) is None:
                    continue
                counts = hits[path]
                for line_rec in file_rec.get("lines", []):
                    counts[line_rec["line_number"]] += line_rec["count"]

    per_module = collections.defaultdict(lambda: [0, 0])  # covered, total
    for path in sorted(hits):
        counts = hits[path]
        covered = sum(1 for c in counts.values() if c > 0)
        total = len(counts)
        per_module[module_of(src_root, path)][0] += covered
        per_module[module_of(src_root, path)][1] += total
        # File-scoped floors (e.g. "util/framed_io") aggregate the .hpp
        # and .cpp of one source unit; only tally scopes with a floor so
        # the report stays module-sized.
        scope = file_scope_of(src_root, path)
        if scope in floors:
            per_module[scope][0] += covered
            per_module[scope][1] += total
        if args.verbose:
            pct = 100.0 * covered / total if total else 100.0
            rel = os.path.relpath(path, src_root)
            print(f"  {pct:6.1f}%  {covered:5d}/{total:<5d}  {rel}")

    print(f"{'module':<12} {'covered':>8} {'lines':>8} {'pct':>7}  floor")
    failures = []
    for module in sorted(set(per_module) | set(floors)):
        covered, total = per_module.get(module, (0, 0))
        pct = 100.0 * covered / total if total else 0.0
        floor = floors.get(module)
        floor_text = f"{floor:.0f}%" if floor is not None else "-"
        status = ""
        if floor is not None:
            if total == 0:
                status = "  FAIL (no coverage data)"
                failures.append(module)
            elif pct < floor:
                status = "  FAIL"
                failures.append(module)
        print(
            f"{module:<12} {covered:>8} {total:>8} {pct:>6.1f}%  "
            f"{floor_text}{status}"
        )

    if failures:
        print(
            f"\ncoverage gate failed for: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print("\ncoverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
