#include "util/stake_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace roleshare::util {
namespace {

TEST(StakeIndex, BuildMatchesPrefixSums) {
  const std::vector<std::int64_t> stakes{5, 0, 3, 12, 1, 0, 7};
  const StakeIndex index(stakes);
  EXPECT_EQ(index.size(), stakes.size());
  std::int64_t running = 0;
  for (std::size_t v = 0; v < stakes.size(); ++v) {
    EXPECT_EQ(index.prefix_sum(v), running) << "prefix " << v;
    EXPECT_EQ(index.stake_of(v), stakes[v]);
    running += stakes[v];
  }
  EXPECT_EQ(index.prefix_sum(stakes.size()), running);
  EXPECT_EQ(index.total(), running);
}

TEST(StakeIndex, FindOwnsCorrectOffsets) {
  // Node v owns offsets [prefix_sum(v), prefix_sum(v+1)); zero-stake
  // nodes own nothing and are never returned.
  const std::vector<std::int64_t> stakes{5, 0, 3};
  const StakeIndex index(stakes);
  for (std::int64_t t = 0; t < 5; ++t) EXPECT_EQ(index.find(t), 0u);
  for (std::int64_t t = 5; t < 8; ++t) EXPECT_EQ(index.find(t), 2u);
}

TEST(StakeIndex, FindEdgeCases) {
  // Leading and trailing zero-stake nodes.
  const std::vector<std::int64_t> stakes{0, 0, 4, 0};
  const StakeIndex index(stakes);
  for (std::int64_t t = 0; t < 4; ++t) EXPECT_EQ(index.find(t), 2u);
  // Single-entry index.
  const StakeIndex single(std::vector<std::int64_t>{9});
  for (std::int64_t t = 0; t < 9; ++t) EXPECT_EQ(single.find(t), 0u);
}

TEST(StakeIndex, IncrementalUpdatesMatchFreshRebuild) {
  // The sparse-path determinism contract: after any delta sequence, an
  // incrementally updated index is indistinguishable from a fresh one.
  Rng rng(7);
  std::vector<std::int64_t> stakes(257);
  for (auto& s : stakes) s = rng.uniform_int(0, 40);
  StakeIndex incremental(stakes);
  for (int step = 0; step < 2000; ++step) {
    const auto v = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(stakes.size()) - 1));
    stakes[v] = rng.uniform_int(0, 60);
    incremental.update(v, stakes[v]);
  }
  const StakeIndex fresh(stakes);
  ASSERT_EQ(incremental.total(), fresh.total());
  for (std::size_t v = 0; v <= stakes.size(); ++v)
    ASSERT_EQ(incremental.prefix_sum(v), fresh.prefix_sum(v)) << v;
  for (std::int64_t t = 0; t < fresh.total(); t += 13)
    ASSERT_EQ(incremental.find(t), fresh.find(t)) << t;
  // Identical draws from identical rng states.
  Rng a(99), b(99);
  for (int d = 0; d < 200; ++d)
    ASSERT_EQ(incremental.sample(a), fresh.sample(b));
}

TEST(StakeIndex, SampleConsumesExactlyOneUniformInt) {
  const std::vector<std::int64_t> stakes{2, 5, 0, 9};
  const StakeIndex index(stakes);
  Rng sampling(42), manual(42);
  for (int d = 0; d < 100; ++d) {
    const std::size_t got = index.sample(sampling);
    const std::int64_t target = manual.uniform_int(0, index.total() - 1);
    EXPECT_EQ(got, index.find(target));
  }
  // Streams stayed in lockstep -> identical next outputs.
  EXPECT_EQ(sampling(), manual());
}

TEST(StakeIndex, SampleIsStakeProportional) {
  const std::vector<std::int64_t> stakes{1, 0, 3, 6};
  const StakeIndex index(stakes);
  Rng rng(5);
  std::vector<std::size_t> hits(stakes.size(), 0);
  const int draws = 20000;
  for (int d = 0; d < draws; ++d) ++hits[index.sample(rng)];
  EXPECT_EQ(hits[1], 0u);
  EXPECT_NEAR(static_cast<double>(hits[0]) / draws, 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[2]) / draws, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(hits[3]) / draws, 0.6, 0.02);
}

TEST(StakeIndex, RebuildReplacesContents) {
  StakeIndex index(std::vector<std::int64_t>{1, 2, 3});
  index.rebuild(std::vector<std::int64_t>{10, 0});
  EXPECT_EQ(index.size(), 2u);
  EXPECT_EQ(index.total(), 10);
  EXPECT_EQ(index.find(9), 0u);
}

TEST(StakeIndex, GuardsRejectInvalidInput) {
  EXPECT_THROW(StakeIndex(std::vector<std::int64_t>{3, -1}),
               std::invalid_argument);
  StakeIndex index(std::vector<std::int64_t>{3, 4});
  EXPECT_THROW(index.update(2, 1), std::invalid_argument);
  EXPECT_THROW(index.update(0, -5), std::invalid_argument);
  // All-zero index: sampling has no valid target.
  StakeIndex zero(std::vector<std::int64_t>{0, 0});
  Rng rng(1);
  EXPECT_THROW((void)zero.sample(rng), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::util
