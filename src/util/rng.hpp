// Deterministic, splittable pseudo-random number generation.
//
// All randomness in RoleShare flows from a single 64-bit experiment seed
// through Rng streams. Rng::split(label) derives an independent child stream
// deterministically, so per-node / per-round randomness does not depend on
// the order in which other components consume the parent stream. This is the
// foundation of reproducible experiments (see DESIGN.md §4).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace roleshare::util {

/// xoshiro256** generator seeded via SplitMix64. Satisfies
/// UniformRandomBitGenerator so it can drive <random> distributions too.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the stream from a single 64-bit seed (SplitMix64 expansion).
  explicit Rng(std::uint64_t seed = 0);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next 64 raw bits.
  result_type operator()();

  /// Derives an independent child stream from this stream's seed material
  /// and a label. Does not advance this stream.
  [[nodiscard]] Rng split(std::uint64_t label) const;
  [[nodiscard]] Rng split(std::string_view label) const;

  /// Seed material split(label) seeds its child stream from. Exposed for
  /// components that take a scalar seed and build their own stream from it
  /// (e.g. NetworkConfig): Rng(parent.derive_seed(k)) == parent.split(k).
  [[nodiscard]] std::uint64_t derive_seed(std::uint64_t label) const;

  /// Chunked stream derivation: child seeds for a whole block of labels
  /// in one call — out[i] = derive_seed(labels[i]), bit-identical to the
  /// per-label calls. Hot loops that need one independent stream per item
  /// (e.g. per-(step, origin) gossip delays) derive a block of seeds up
  /// front and construct each Rng directly from its seed, instead of
  /// paying two full split() constructions inside the loop.
  /// Requires labels.size() == out.size().
  void derive_seeds(std::span<const std::uint64_t> labels,
                    std::span<std::uint64_t> out) const;

  /// The seed this stream was constructed from.
  std::uint64_t seed_material() const { return seed_material_; }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo < hi.
  double uniform_real(double lo, double hi);

  /// Standard normal deviate (Box–Muller, cached pair).
  double normal();

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  double normal(double mean, double sigma);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  /// Requires k <= n. O(n) time, O(n) scratch.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Weighted index selection: returns i with probability w[i] / sum(w).
  /// Requires all weights >= 0 and sum > 0. O(n) per draw.
  std::size_t weighted_index(const std::vector<double>& weights);

 private:
  std::array<std::uint64_t, 4> state_{};
  std::uint64_t seed_material_ = 0;  // retained for split()
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// SplitMix64 step — exposed because crypto/vrf reuse it for mixing labels.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace roleshare::util
