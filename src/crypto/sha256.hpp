// SHA-256 implemented from scratch (FIPS 180-4). This is the only hash
// primitive in RoleShare: block hashing, simulated signatures, the VRF and
// sortition all build on it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace roleshare::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context. Usage: update(...) any number of times,
/// then finalize() exactly once.
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);
  /// Appends an integer in little-endian byte order (domain-separation aid).
  void update_u64(std::uint64_t value);

  /// Completes the hash. The context must not be reused afterwards.
  Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// One-shot helpers.
Digest sha256(std::span<const std::uint8_t> data);
Digest sha256(std::string_view text);

}  // namespace roleshare::crypto
