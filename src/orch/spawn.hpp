// Process + socket plumbing under the orchestrator (DESIGN.md §11):
// Unix stream sockets for the coordinator/worker wire, fork-based worker
// spawning, and non-blocking reaping. Kept separate from the
// coordinator's scheduling logic so tests can exercise leases and
// requeues with workers that are plain forked functions instead of
// exec'd binaries.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <string>

namespace roleshare::orch {

/// Creates, binds and listens on a Unix stream socket at `path`
/// (unlinking any stale file first). Returns the listening fd; throws
/// std::runtime_error naming the path on any failure. Socket paths have
/// a hard kernel length cap (~107 bytes) — keep spool dirs short.
int listen_unix(const std::string& path);

/// Connects to the coordinator's socket. Retries briefly (the worker may
/// win the race against the coordinator's bind) before throwing.
int connect_unix(const std::string& path);

/// accept() on a listening fd, EINTR-retried; throws on failure.
int accept_unix(int listen_fd);

/// Forks and runs `child` in the child process; the child's return value
/// becomes its exit status (the child NEVER returns to the caller's
/// code — _exit is called immediately). Returns the child pid.
/// This is how both the orchestrate CLI (child = exec self with
/// --worker) and the tests (child = run_worker in-process) spawn agents.
pid_t spawn_child(const std::function<int()>& child);

/// Immediate process exit for forked children and fault injection:
/// flushes this process's stdio, dumps coverage counters when the
/// build is instrumented, then _exit(status) — atexit handlers
/// (inherited from the parent across fork) never run.
[[noreturn]] void hard_exit(int status);

/// Non-blocking reap: returns true and fills status if `pid` has exited.
bool try_reap(pid_t pid, int& status);

/// Human-readable exit description ("exit 9", "signal 11").
std::string describe_exit(int status);

}  // namespace roleshare::orch
