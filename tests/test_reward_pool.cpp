#include "econ/reward_pool.hpp"

#include <gtest/gtest.h>

namespace roleshare::econ {
namespace {

using ledger::algos;

TEST(FoundationPool, DefaultCeilingIsOnePointSevenFiveBillion) {
  const FoundationPool pool;
  EXPECT_EQ(pool.ceiling(), algos(1'750'000'000));
  EXPECT_EQ(pool.balance(), 0);
  EXPECT_EQ(pool.emitted(), 0);
}

TEST(FoundationPool, InjectAndWithdraw) {
  FoundationPool pool(algos(100));
  EXPECT_EQ(pool.inject(algos(30)), algos(30));
  EXPECT_EQ(pool.balance(), algos(30));
  EXPECT_EQ(pool.withdraw(algos(12)), algos(12));
  EXPECT_EQ(pool.balance(), algos(18));
  EXPECT_EQ(pool.disbursed(), algos(12));
}

TEST(FoundationPool, InjectionClippedAtCeiling) {
  FoundationPool pool(algos(50));
  EXPECT_EQ(pool.inject(algos(40)), algos(40));
  EXPECT_EQ(pool.inject(algos(40)), algos(10));  // only 10 left to ceiling
  EXPECT_EQ(pool.emitted(), algos(50));
  EXPECT_EQ(pool.inject(algos(1)), 0);
}

TEST(FoundationPool, WithdrawClippedAtBalance) {
  FoundationPool pool(algos(50));
  pool.inject(algos(5));
  EXPECT_EQ(pool.withdraw(algos(8)), algos(5));
  EXPECT_EQ(pool.balance(), 0);
}

TEST(FoundationPool, ExhaustionSemantics) {
  FoundationPool pool(algos(10));
  EXPECT_FALSE(pool.exhausted());
  pool.inject(algos(10));
  EXPECT_FALSE(pool.exhausted());  // ceiling met but balance remains
  pool.withdraw(algos(10));
  EXPECT_TRUE(pool.exhausted());
}

TEST(FoundationPool, ConservationInvariant) {
  // emitted == balance + disbursed at all times.
  FoundationPool pool(algos(1000));
  for (int i = 0; i < 20; ++i) {
    pool.inject(algos(7));
    pool.withdraw(algos(3));
    EXPECT_EQ(pool.emitted(), pool.balance() + pool.disbursed());
  }
}

TEST(FoundationPool, RejectsNegativeAmounts) {
  FoundationPool pool(algos(10));
  EXPECT_THROW(pool.inject(-1), std::invalid_argument);
  EXPECT_THROW(pool.withdraw(-1), std::invalid_argument);
  EXPECT_THROW(FoundationPool(0), std::invalid_argument);
}

TEST(TransactionFeePool, DepositWithdraw) {
  TransactionFeePool pool;
  pool.deposit(500);
  pool.deposit(250);
  EXPECT_EQ(pool.balance(), 750);
  EXPECT_EQ(pool.withdraw(1000), 750);  // clipped
  EXPECT_EQ(pool.balance(), 0);
}

TEST(TransactionFeePool, RejectsNegative) {
  TransactionFeePool pool;
  EXPECT_THROW(pool.deposit(-5), std::invalid_argument);
  EXPECT_THROW(pool.withdraw(-5), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::econ
