#include "ledger/blockchain.hpp"

#include "util/require.hpp"

namespace roleshare::ledger {

Blockchain::Blockchain(std::uint64_t genesis_seed) {
  const crypto::Hash256 seed =
      crypto::HashBuilder("roleshare.genesis").add_u64(genesis_seed).build();
  blocks_.push_back(Block::empty(0, crypto::Hash256::zero(), seed));
}

const Block& Blockchain::at(std::size_t index) const {
  RS_REQUIRE(index < blocks_.size(), "block index out of range");
  return blocks_[index];
}

crypto::Hash256 Blockchain::next_seed() const {
  return crypto::HashBuilder("roleshare.seed")
      .add(current_seed())
      .add_u64(next_round())
      .build();
}

bool Blockchain::append(Block block) {
  if (block.round() != next_round()) return false;
  if (block.prev_hash() != tip().hash()) return false;
  if (block.seed() != next_seed()) return false;
  blocks_.push_back(std::move(block));
  return true;
}

std::size_t Blockchain::non_empty_count() const {
  std::size_t count = 0;
  for (std::size_t i = 1; i < blocks_.size(); ++i)
    if (!blocks_[i].is_empty()) ++count;
  return count;
}

}  // namespace roleshare::ledger
