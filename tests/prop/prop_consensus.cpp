// Property suite: BA round invariants under randomized network
// configurations, scenario policies and churn (DESIGN.md §8).
//
// Whatever the population, stake spread, defection/faulty mix, synchrony
// degradation or churn schedule, every simulated round must deliver a
// coherent result: safety (the chain extends its own tip by exactly one
// agreed block), termination (the engine returns with every node
// classified), and bookkeeping consistency (fractions over the live
// population, zero stake for non-participants, observed roles a subset
// of true roles). These are the invariants the handwritten
// tests/test_properties.cpp sweeps check at fixed configurations —
// here the configuration itself is the fuzzed input.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "consensus/params.hpp"
#include "gen/domain_gen.hpp"
#include "sim/network.hpp"
#include "sim/round_engine.hpp"
#include "sim/scenario_policy.hpp"
#include "util/proptest.hpp"

namespace {

using roleshare::consensus::Role;
using roleshare::sim::Network;
using roleshare::sim::NetworkConfig;
using roleshare::sim::NodeOutcome;
using roleshare::sim::RoundEngine;
using roleshare::sim::RoundResult;
using roleshare::sim::ScenarioPolicy;
using roleshare::sim::ScenarioPolicyConfig;
using roleshare::util::proptest::Verdict;
namespace pgen = roleshare::util::proptest::gen;

std::string describe_config(const NetworkConfig& config,
                            const ScenarioPolicyConfig& policy,
                            std::size_t rounds) {
  return "nodes=" + std::to_string(config.node_count) +
         " seed=" + std::to_string(config.seed) +
         " defect=" + std::to_string(config.defection_rate) +
         " faulty=" + std::to_string(config.faulty_rate) +
         " policy=" + std::string(to_string(policy.kind)) +
         " churn(leave=" + std::to_string(policy.churn.leave_probability) +
         ",join=" + std::to_string(policy.churn.join_probability) +
         ",floor=" + std::to_string(policy.churn.min_live) + ")" +
         " rounds=" + std::to_string(rounds);
}

// One round's invariant bundle; `live_expected` is what the policy layer
// reported from begin_round.
Verdict round_invariants(const Network& net, const RoundResult& result,
                         std::size_t live_expected,
                         const roleshare::crypto::Hash256& tip_before) {
  const std::size_t n = net.node_count();
  if (result.outcomes.size() != n)
    return Verdict{false, "outcomes covers " +
                              std::to_string(result.outcomes.size()) +
                              " of " + std::to_string(n) + " nodes"};
  if (result.live_count != live_expected)
    return Verdict{false, "live_count " + std::to_string(result.live_count) +
                              " != policy-reported " +
                              std::to_string(live_expected)};
  if (result.live_count == 0 || result.live_count > n)
    return Verdict{false,
                   "implausible live_count " +
                       std::to_string(result.live_count)};

  // Termination bookkeeping: fractions are the outcome counts over the
  // live population and sum to one.
  std::size_t finals = 0, tentatives = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (result.outcomes[v] == NodeOutcome::Final) ++finals;
    if (result.outcomes[v] == NodeOutcome::Tentative) ++tentatives;
  }
  const double live = static_cast<double>(result.live_count);
  if (std::abs(result.final_fraction - finals / live) > 1e-9 ||
      std::abs(result.tentative_fraction - tentatives / live) > 1e-9)
    return Verdict{false, "fractions disagree with outcome counts"};
  if (std::abs(result.final_fraction + result.tentative_fraction +
               result.none_fraction - 1.0) > 1e-9)
    return Verdict{false, "fractions sum to " +
                              std::to_string(result.final_fraction +
                                             result.tentative_fraction +
                                             result.none_fraction)};

  // Safety: the chain extended its own tip by exactly the agreed block.
  if (!(net.chain().tip().prev_hash() == tip_before))
    return Verdict{false, "new tip does not extend the previous tip"};
  if (net.chain().tip().is_empty() == result.non_empty_block)
    return Verdict{false, "non_empty_block disagrees with the chain tip"};

  // Role snapshots: aligned with node ids; non-participants carry zero
  // stake; a node never *observably* holds a role its true roles deny.
  if (!result.roles.has_value() || !result.roles_true.has_value())
    return Verdict{false, "round result lacks role snapshots"};
  if (result.roles->node_count() != n || result.roles_true->node_count() != n)
    return Verdict{false, "role snapshot misaligned with the population"};
  for (std::size_t v = 0; v < n; ++v) {
    const auto id = static_cast<roleshare::ledger::NodeId>(v);
    if (result.roles->stake(id) < 0 || result.roles_true->stake(id) < 0)
      return Verdict{false, "negative stake in a role snapshot"};
    if (!net.live(id)) {
      if (result.outcomes[v] != NodeOutcome::NoBlock)
        return Verdict{false,
                       "departed node " + std::to_string(v) +
                           " reported an outcome"};
      if (result.roles->stake(id) != 0)
        return Verdict{false, "departed node " + std::to_string(v) +
                                  " carries reward stake"};
    }
    const Role observed = result.roles->role(id);
    const Role truth = result.roles_true->role(id);
    if (observed == Role::Leader && truth != Role::Leader)
      return Verdict{false, "node " + std::to_string(v) +
                                " observed as leader but not truly one"};
    if (observed == Role::Committee && truth == Role::Other)
      return Verdict{false, "node " + std::to_string(v) +
                                " observed on committee but truly Other"};
  }
  return Verdict{};
}

}  // namespace

// Expensive (each case builds a network and runs full BA rounds), so the
// default count is modest; the nightly ROLESHARE_PROP_SCALE run
// multiplies it.
PROP_TEST_WITH_PARAMS(PropConsensus, RoundInvariantsUnderRandomScenarios,
                      25) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::network_config(24, 64),
                     roleshare::testgen::scenario_policy(),
                     pgen::size_range(1, 3)),
      [](const std::tuple<NetworkConfig, ScenarioPolicyConfig, std::size_t>&
             t) {
        const auto& [net_config, policy_config, rounds] = t;
        Network net(net_config);
        RoundEngine engine(net,
                           roleshare::consensus::ConsensusParams::scaled_for(
                               net.accounts().total_stake()));
        ScenarioPolicy policy(policy_config, net);
        RoundResult last;
        const RoundResult* last_ptr = nullptr;
        for (std::size_t r = 0; r < rounds; ++r) {
          const std::size_t live =
              policy.begin_round(r, last_ptr, engine.executor());
          const auto tip_before = net.chain().tip().hash();
          const std::size_t height_before = net.chain().height();
          last = engine.run_round();
          last_ptr = &last;
          if (net.chain().height() != height_before + 1)
            return Verdict{false, "round " + std::to_string(r) +
                                      " did not extend the chain by one"};
          Verdict v = round_invariants(net, last, live, tip_before);
          if (!v.ok) {
            v.note = "round " + std::to_string(r) + ": " + v.note;
            return v;
          }
        }
        return Verdict{};
      },
      [](const std::tuple<NetworkConfig, ScenarioPolicyConfig, std::size_t>&
             t) {
        return describe_config(std::get<0>(t), std::get<1>(t),
                               std::get<2>(t));
      });
}

// Determinism: the same (config, policy) draw replayed on a fresh
// network reproduces the identical outcome — the bit-identical seeding
// discipline every experiment and shard depends on.
PROP_TEST_WITH_PARAMS(PropConsensus, RoundsAreDeterministicInTheSeed, 10) {
  prop.check(
      pgen::tuple_of(roleshare::testgen::network_config(24, 48),
                     roleshare::testgen::scenario_policy()),
      [](const std::tuple<NetworkConfig, ScenarioPolicyConfig>& t) {
        const auto& [net_config, policy_config] = t;
        const auto execute = [&]() {
          Network net(net_config);
          RoundEngine engine(
              net, roleshare::consensus::ConsensusParams::scaled_for(
                       net.accounts().total_stake()));
          ScenarioPolicy policy(policy_config, net);
          std::string trace;
          RoundResult last;
          const RoundResult* last_ptr = nullptr;
          for (std::size_t r = 0; r < 2; ++r) {
            policy.begin_round(r, last_ptr, engine.executor());
            last = engine.run_round();
            last_ptr = &last;
            trace += std::to_string(last.final_fraction) + "/" +
                     std::to_string(last.tentative_fraction) + "/" +
                     std::to_string(last.live_count) + "/" +
                     (last.non_empty_block ? "b" : "e") + ";";
          }
          return trace;
        };
        const std::string first = execute();
        const std::string second = execute();
        if (first != second)
          return Verdict{false,
                         "two executions diverged: " + first + " vs " +
                             second};
        return Verdict{};
      });
}
