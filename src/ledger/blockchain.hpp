// Hash-chained blockchain with Algorand seed evolution.
//
// The per-round seed Q_r feeding sortition is committed in each block:
// Q_r = H(Q_{r-1}, r[, proposer]) — predetermined at the end of round r-1,
// as required by §II-B4.
#pragma once

#include <vector>

#include "ledger/block.hpp"

namespace roleshare::ledger {

class Blockchain {
 public:
  /// Starts a chain with a genesis block derived from `genesis_seed`.
  explicit Blockchain(std::uint64_t genesis_seed = 0);

  std::size_t height() const { return blocks_.size(); }
  const Block& tip() const { return blocks_.back(); }
  const Block& at(std::size_t index) const;

  /// The round number the next block must carry.
  Round next_round() const { return blocks_.size(); }

  /// Seed Q_{r-1} to feed sortition for the next round.
  const crypto::Hash256& current_seed() const { return tip().seed(); }

  /// Seed Q_r the next block must commit to (deterministic from the chain).
  crypto::Hash256 next_seed() const;

  /// Appends a block after checking round number, prev-hash linkage and the
  /// committed seed. Returns false (chain unchanged) on any mismatch.
  bool append(Block block);

  /// Number of non-empty blocks on the chain (excluding genesis).
  std::size_t non_empty_count() const;

 private:
  std::vector<Block> blocks_;
};

}  // namespace roleshare::ledger
