// The paper's role-based reward sharing mechanism (Fig 4, Eq 5).
//
// B_i is split αB_i : βB_i : γB_i across leaders, committee members and the
// remaining online nodes, each sub-pot shared stake-proportionally inside
// its role:  r_L = αB_i/S_L, r_M = βB_i/S_M, r_K = γB_i/S_K.
//
// In adaptive mode (the full Algorithm 1 deployment) the scheme re-runs the
// optimizer every round on the live snapshot, choosing both the split and
// the minimal incentive-compatible B_i. In fixed mode the designer pins
// (α, β) and a budget policy, which is what the Fig-5 numerical analysis
// examines.
#pragma once

#include <optional>

#include "econ/optimizer.hpp"
#include "econ/reward_scheme.hpp"

namespace roleshare::econ {

class RoleBasedScheme final : public RewardScheme {
 public:
  /// Adaptive Algorithm-1 mode: per-round (α, β, B_i) from the optimizer.
  /// `min_other_stake`, when set, excludes Other nodes below the threshold
  /// from the reward set (Fig-7(c)'s U_w filter) before optimizing.
  RoleBasedScheme(CostModel costs, OptimizerConfig optimizer_config = {},
                  std::optional<std::int64_t> min_other_stake = std::nullopt);

  /// Fixed-split mode: the designer supplies (α, β); B_i is still the
  /// Theorem-3 minimum for that split each round.
  RoleBasedScheme(CostModel costs, RewardSplit fixed_split,
                  std::optional<std::int64_t> min_other_stake = std::nullopt);

  std::string name() const override;

  ledger::MicroAlgos required_budget(ledger::Round round,
                                     const RoleSnapshot& snapshot) override;

  Payouts distribute(ledger::Round round, const RoleSnapshot& snapshot,
                     ledger::MicroAlgos budget) override;

  /// The split used by the most recent required_budget/distribute call.
  const RewardSplit& last_split() const { return last_split_; }
  /// Whether the last optimization was feasible.
  bool last_feasible() const { return last_feasible_; }

 private:
  RoleSnapshot effective_snapshot(const RoleSnapshot& snapshot) const;

  CostModel costs_;
  RewardOptimizer optimizer_;
  std::optional<RewardSplit> fixed_split_;
  std::optional<std::int64_t> min_other_stake_;
  RewardSplit last_split_{0.01, 0.01};
  bool last_feasible_ = false;
};

}  // namespace roleshare::econ
