// sim::ResultStore — content-addressed cache of finished shard partials.
// Under test: lookup returns the inserted payload byte-identically, any
// corruption (single-byte flips, truncation, foreign key behind a
// colliding file name) downgrades to a miss rather than an error,
// concurrent writers racing on one key all succeed (atomic temp+rename
// publication), and gc removes exactly what lookup would reject plus
// oldest-first evictions down to a byte budget.
#include "sim/result_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace roleshare::sim {
namespace {

namespace fs = std::filesystem;

class ResultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("rs_store_test_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->random_seed()) +
              "_" + ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  static ResultKey key_for(std::size_t begin, std::size_t end,
                           const std::string& bench = "fig3_defection") {
    ResultKey key;
    key.kind = "defection";
    key.bench = bench;
    key.spec_hash = "00112233aabbccdd";
    key.backend = AggBackend::Exact;
    key.run_begin = begin;
    key.run_end = end;
    return key;
  }

  std::string root_;
};

TEST_F(ResultStoreTest, KeyIdIsCanonicalAndValidated) {
  const ResultKey key = key_for(0, 50);
  EXPECT_EQ(key.id(),
            "defection/fig3_defection/00112233aabbccdd/exact/[0,50)");
  EXPECT_EQ(key.entry_name().size(), 16u + 4u);  // fnv hex + ".rsr"
  ResultKey empty_window = key_for(5, 5);
  EXPECT_THROW(empty_window.id(), std::invalid_argument);
  ResultKey missing;
  EXPECT_THROW(missing.id(), std::invalid_argument);
  // Different windows / benches address different entries.
  EXPECT_NE(key_for(0, 50).entry_name(), key_for(0, 25).entry_name());
  EXPECT_NE(key_for(0, 50).entry_name(),
            key_for(0, 50, "scenario_sweep").entry_name());
}

TEST_F(ResultStoreTest, LookupReturnsInsertedBytesExactly) {
  ResultStore store(root_);
  const ResultKey key = key_for(0, 10);
  EXPECT_FALSE(store.lookup(key).has_value());
  EXPECT_FALSE(store.contains(key));

  const std::string payload("binary \0 payload \xff bytes", 24);
  const std::string path = store.insert(key, payload);
  EXPECT_EQ(path, store.entry_path(key));
  EXPECT_TRUE(fs::exists(path));

  const auto cached = store.lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, payload);  // byte-identical, NULs and high bytes kept

  // Re-insert (the racing-writer case, serialized): still one entry,
  // still the same bytes.
  store.insert(key, payload);
  EXPECT_EQ(*store.lookup(key), payload);
}

TEST_F(ResultStoreTest, EverySingleByteCorruptionIsAMiss) {
  ResultStore store(root_);
  const ResultKey key = key_for(0, 10);
  store.insert(key, "the cached result payload");
  const std::string path = store.entry_path(key);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string bad = bytes;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bad;
    EXPECT_FALSE(store.lookup(key).has_value())
        << "flip at byte " << i << " still served";
  }
  // Truncations are misses too.
  for (std::size_t len : {std::size_t{0}, bytes.size() / 2,
                          bytes.size() - 1}) {
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, len);
    EXPECT_FALSE(store.lookup(key).has_value())
        << "truncation to " << len << " bytes still served";
  }
  // Restoring the original bytes restores the hit.
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_TRUE(store.lookup(key).has_value());
}

TEST_F(ResultStoreTest, ForeignEntryBehindTheFileNameIsAMiss) {
  ResultStore store(root_);
  const ResultKey a = key_for(0, 10);
  const ResultKey b = key_for(10, 20);
  store.insert(a, "payload A");
  // Simulate an FNV file-name collision: b's entry path carries a's
  // frame. The embedded key id must unmask it.
  fs::copy_file(store.entry_path(a), store.entry_path(b));
  EXPECT_FALSE(store.lookup(b).has_value());
  EXPECT_EQ(*store.lookup(a), "payload A");
}

TEST_F(ResultStoreTest, ConcurrentWritersOnOneKeyAllSucceed) {
  ResultStore store(root_);
  const ResultKey key = key_for(0, 100);
  const std::string payload(4096, 'x');
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([&store, &key, &payload] {
      // Same key → same content (the key addresses it); every writer
      // publishes via its own temp file and rename, so none can observe
      // or produce a torn entry.
      for (int i = 0; i < 20; ++i) store.insert(key, payload);
    });
  }
  for (std::thread& t : writers) t.join();
  const auto cached = store.lookup(key);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, payload);
  // No temp debris left behind by successful publications.
  std::size_t tmp_files = 0;
  for (const fs::directory_entry& de : fs::directory_iterator(root_)) {
    if (de.path().filename().string().find(".tmp.") != std::string::npos)
      ++tmp_files;
  }
  EXPECT_EQ(tmp_files, 0u);
}

TEST_F(ResultStoreTest, GcReapsCorruptEntriesAndTempDebris) {
  ResultStore store(root_);
  store.insert(key_for(0, 10), "keep me");
  store.insert(key_for(10, 20), "corrupt me");
  // Corrupt the second entry and drop orphaned temp + foreign files.
  std::ofstream(store.entry_path(key_for(10, 20)),
                std::ios::binary | std::ios::trunc)
      << "garbage";
  std::ofstream(root_ + "/deadbeef.rsr.tmp.123.0", std::ios::binary)
      << "orphan";
  std::ofstream(root_ + "/README.txt", std::ios::binary) << "not ours";

  const GcStats stats = store.gc();
  EXPECT_EQ(stats.entries_kept, 1u);
  EXPECT_EQ(stats.corrupt_removed, 2u);  // corrupt entry + temp orphan
  EXPECT_EQ(stats.evicted, 0u);
  EXPECT_GT(stats.bytes_kept, 0u);
  EXPECT_EQ(*store.lookup(key_for(0, 10)), "keep me");
  EXPECT_FALSE(store.lookup(key_for(10, 20)).has_value());
  EXPECT_TRUE(fs::exists(root_ + "/README.txt"));  // foreign files kept
}

TEST_F(ResultStoreTest, GcEvictsOldestFirstToTheByteBudget) {
  ResultStore store(root_);
  const std::string payload(1000, 'p');
  for (std::size_t i = 0; i < 4; ++i) {
    store.insert(key_for(i * 10, i * 10 + 10), payload);
    // Distinct mtimes so "oldest" is well defined across filesystems
    // with coarse timestamps.
    const auto when = fs::file_time_type::clock::now() -
                      std::chrono::hours(4 - i);
    fs::last_write_time(store.entry_path(key_for(i * 10, i * 10 + 10)),
                        when);
  }
  const GcStats all = store.gc();
  ASSERT_EQ(all.entries_kept, 4u);

  // Budget exactly fitting the two NEWEST entries (entry sizes differ by
  // a few bytes — the key id is embedded — so halving bytes_kept would
  // be off by one): the two oldest go.
  const std::uint64_t budget =
      fs::file_size(store.entry_path(key_for(20, 30))) +
      fs::file_size(store.entry_path(key_for(30, 40)));
  const GcStats stats = store.gc(budget);
  EXPECT_EQ(stats.evicted, 2u);
  EXPECT_EQ(stats.entries_kept, 2u);
  EXPECT_FALSE(store.contains(key_for(0, 10)));
  EXPECT_FALSE(store.contains(key_for(10, 20)));
  EXPECT_TRUE(store.contains(key_for(20, 30)));
  EXPECT_TRUE(store.contains(key_for(30, 40)));
}

TEST_F(ResultStoreTest, UnusableRootIsAnError) {
  const std::string file_path = root_ + "_file";
  std::ofstream(file_path, std::ios::binary) << "x";
  EXPECT_THROW(ResultStore{file_path}, std::runtime_error);
  fs::remove(file_path);
  EXPECT_THROW(ResultStore{""}, std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::sim
