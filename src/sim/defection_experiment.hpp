// The Fig-3 experiment: how the share of nodes extracting final /
// tentative / no blocks evolves per round as a fraction of the network
// defects. Multiple independent runs, trimmed-mean aggregation.
//
// PR 3 generalizes it into the scenario engine: a ScenarioPolicyConfig
// slots a behaviour-policy layer (adaptive best-response defection,
// stake-correlated defection, churn) in front of every round, with the
// default (scripted, no churn) bit-identical to the original Fig-3
// semantics.
#pragma once

#include "consensus/params.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/scenario_policy.hpp"

namespace roleshare::sim {

struct DefectionExperimentConfig {
  /// Network template; its seed is the experiment's *root* seed — run k
  /// simulates with the independent stream root.split(k).
  NetworkConfig network;
  std::size_t runs = 100;
  std::size_t rounds = 50;
  /// Worker threads for the run fan-out (0 = all hardware threads).
  /// Aggregates are bit-identical for every thread count.
  std::size_t threads = 1;
  /// Worker threads for each run's per-node round-engine loops (0 = all
  /// hardware threads). Forced serial while the run fan-out is parallel;
  /// aggregates are bit-identical for every inner thread count too.
  std::size_t inner_threads = 1;
  double trim_fraction = 0.2;
  /// When true the consensus committee expectations are re-scaled to each
  /// run's total stake (required for small simulated networks).
  bool scale_params_to_stake = true;
  consensus::ConsensusParams params{};
  /// Behaviour-policy layer applied per run (adaptive / stake-correlated
  /// defection, churn). The default — scripted, no churn — leaves every
  /// aggregate bit-identical to the pre-policy experiment.
  ScenarioPolicyConfig policy{};
};

struct DefectionSeries {
  std::vector<RoundAggregate> rounds;
  /// Fraction of runs in which the chain gained at least one non-empty
  /// block (network-level liveness indicator).
  double runs_with_progress = 0.0;
  /// Mean live-node count per round across runs — round-varying under
  /// churn, constant node_count otherwise.
  std::vector<double> live_series;
  /// Smallest / largest live count observed in any (run, round).
  std::size_t min_live = 0;
  std::size_t max_live = 0;
  /// Mean fraction of live nodes playing Cooperate per round — the
  /// series that shows adaptive defection unraveling (or not).
  std::vector<double> cooperation_series;
};

/// Runs the experiment on the shared ExperimentRunner engine.
/// Deterministic in config.network.seed, independent of config.threads
/// and config.inner_threads.
DefectionSeries run_defection_experiment(
    const DefectionExperimentConfig& config);

}  // namespace roleshare::sim
