// Wire format for the consensus-layer messages of §II-B2: Voting messages
// (vote + sortition proof), Block-proposal messages (block + proof +
// priority) and Credential messages (the proposer's proof broadcast ahead
// of the block so peers can drop low-priority proposals early).
//
// Built on the ledger codec primitives; same guarantees — deterministic
// bytes, strict decoding, DecodeError on malformed input.
#pragma once

#include "consensus/proposal.hpp"
#include "consensus/votes.hpp"
#include "ledger/codec.hpp"

namespace roleshare::consensus {

using ledger::DecodeError;

/// Credential message: announces a proposer's eligibility and priority for
/// a round without shipping the block yet (§II-B2, congestion control).
struct Credential {
  ledger::NodeId proposer = 0;
  crypto::PublicKey proposer_key;
  std::uint64_t round = 0;
  crypto::SortitionResult sortition;
  std::uint64_t priority = 0;

  /// Builds the credential for a winning proposer.
  static Credential for_proposal(const BlockProposal& proposal,
                                 std::uint64_t round);

  /// Verifies the sortition proof and the claimed priority.
  bool verify(const crypto::VrfInput& input, std::int64_t stake,
              const crypto::SortitionParams& params) const;
};

std::vector<std::uint8_t> encode_vote(const Vote& vote);
Vote decode_vote(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_proposal(const BlockProposal& proposal);
BlockProposal decode_proposal(std::span<const std::uint8_t> bytes);

std::vector<std::uint8_t> encode_credential(const Credential& credential);
Credential decode_credential(std::span<const std::uint8_t> bytes);

}  // namespace roleshare::consensus
