// P1 — single-run round-engine latency: the within-run parallelism bench.
//
// Unlike the figure benches (many runs fanned out with --threads), this
// measures what the inner executor buys on ONE run at paper-scale node
// counts: the same network simulated for --rounds rounds, once with the
// per-node loops serial (inner-threads=1) and once across the inner pool
// (--inner-threads, default 0 = all hardware threads). The two passes must
// produce bit-identical per-round results — the determinism contract —
// and the JSON records both wall times plus the speedup for the perf
// trajectory. On a 4+-core machine at >=100k nodes the expected speedup
// is >1.5x (sortition VRFs, vote verification, per-node tallies and the
// gossip fan-out all scale; the serial remainder is the committee scan and
// chain append).
//
// The serial pass runs on a reused RoundWorkspace with the global
// allocation counter bracketing each round, so the JSON also tracks heap
// allocations per steady-state round — the reusable-workspace contract's
// regression gate — plus the workspace's resident capacity.
//
//   $ ./round_latency --nodes=100000 --rounds=3 --inner-threads=0
//   $ ./round_latency --sweep=1 --rounds=3        # 1000/3000/10000 nodes
//   $ ./round_latency --nodes=3000 --self-check=1 # CI determinism gate
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "bench_util.hpp"
#include "sim/aggregators.hpp"
#include "sim/round_engine.hpp"
#include "util/thread_pool.hpp"

using namespace roleshare;

namespace {

struct PassResult {
  std::vector<double> final_fractions;
  std::vector<double> none_fractions;
  /// Full per-node outcome vectors and proposal counts, kept so the
  /// determinism gate compares the complete round result, not just the
  /// derived fractions.
  std::vector<std::vector<sim::NodeOutcome>> outcomes;
  std::vector<std::size_t> proposals;
  /// Heap allocations performed inside each run_round_into call.
  std::vector<std::uint64_t> allocs_per_round;
  /// Bytes reserved across the workspace's buffers after the last round.
  std::size_t workspace_bytes = 0;
  double wall_ms = 0.0;

  double ms_per_round() const {
    return allocs_per_round.empty()
               ? 0.0
               : wall_ms / static_cast<double>(allocs_per_round.size());
  }
  double rounds_per_sec() const {
    return wall_ms > 0.0 ? 1000.0 *
                               static_cast<double>(allocs_per_round.size()) /
                               wall_ms
                         : 0.0;
  }
  /// Steady-state allocations: the minimum over rounds after the first
  /// (the first round grows every buffer to its high-water mark).
  std::uint64_t steady_allocs() const {
    if (allocs_per_round.empty()) return 0;
    std::uint64_t best = allocs_per_round.back();
    for (std::size_t r = 1; r < allocs_per_round.size(); ++r)
      best = std::min(best, allocs_per_round[r]);
    return best;
  }
};

PassResult run_pass(std::size_t nodes, std::size_t rounds,
                    std::uint64_t seed, double defection_rate,
                    std::size_t inner_threads) {
  sim::NetworkConfig config;
  config.node_count = nodes;
  config.seed = seed;
  config.defection_rate = defection_rate;
  sim::Network net(config);

  const std::size_t workers =
      util::ThreadPool::resolve_thread_count(inner_threads);
  std::optional<util::ThreadPool> pool;
  if (workers > 1) pool.emplace(workers);
  sim::RoundEngine engine(net,
                          consensus::ConsensusParams::scaled_for(
                              net.accounts().total_stake()),
                          pool ? &*pool : nullptr);

  PassResult pass;
  sim::RoundWorkspace ws;
  sim::RoundResult result;
  const bench::WallTimer timer;
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::uint64_t allocs_before = bench::alloc_count();
    engine.run_round_into(result, ws);
    pass.allocs_per_round.push_back(bench::alloc_count() - allocs_before);
    pass.final_fractions.push_back(result.final_fraction);
    pass.none_fractions.push_back(result.none_fraction);
    pass.outcomes.push_back(result.outcomes);
    pass.proposals.push_back(result.proposals);
  }
  pass.wall_ms = timer.elapsed_ms();
  pass.workspace_bytes = ws.capacity_bytes();
  return pass;
}

/// The determinism gate: the parallel pass must reproduce the serial pass
/// bit for bit — per-node outcomes and proposal counts included, not just
/// the derived fractions — or the speedup is meaningless.
bool passes_identical(const PassResult& serial, const PassResult& parallel) {
  return serial.final_fractions == parallel.final_fractions &&
         serial.none_fractions == parallel.none_fractions &&
         serial.proposals == parallel.proposals &&
         serial.outcomes == parallel.outcomes;
}

struct Measurement {
  PassResult serial;
  PassResult parallel;
  bool identical = false;
  double speedup = 0.0;
};

/// One serial + parallel measurement at a node count; appends the fields
/// under `prefix` to the BENCH JSON.
Measurement measure_size(std::size_t nodes, std::size_t rounds,
                         std::uint64_t seed, std::size_t inner_threads,
                         std::size_t workers, const std::string& prefix,
                         bench::JsonFields& fields) {
  Measurement m;
  std::printf("\nserial pass (%zu nodes, inner-threads=1)...\n", nodes);
  m.serial = run_pass(nodes, rounds, seed, 0.05, 1);
  std::printf("  wall: %.0f ms (%.1f ms/round, %.2f rounds/s)\n",
              m.serial.wall_ms, m.serial.ms_per_round(),
              m.serial.rounds_per_sec());
  std::printf("  allocations/round: first %llu, steady %llu | "
              "workspace %.1f KiB\n",
              static_cast<unsigned long long>(
                  m.serial.allocs_per_round.front()),
              static_cast<unsigned long long>(m.serial.steady_allocs()),
              static_cast<double>(m.serial.workspace_bytes) / 1024.0);

  std::printf("parallel pass (%zu workers)...\n", workers);
  m.parallel = run_pass(nodes, rounds, seed, 0.05, inner_threads);
  std::printf("  wall: %.0f ms (%.1f ms/round, %.2f rounds/s)\n",
              m.parallel.wall_ms, m.parallel.ms_per_round(),
              m.parallel.rounds_per_sec());

  m.identical = passes_identical(m.serial, m.parallel);
  m.speedup = m.parallel.wall_ms > 0.0
                  ? m.serial.wall_ms / m.parallel.wall_ms
                  : 0.0;
  std::printf("bit-identical results: %s | speedup: %.2fx\n",
              m.identical ? "yes" : "NO — BUG", m.speedup);

  fields.emplace_back(prefix + "wall_ms_serial", m.serial.wall_ms);
  fields.emplace_back(prefix + "wall_ms_parallel", m.parallel.wall_ms);
  fields.emplace_back(prefix + "ms_per_round_serial",
                      m.serial.ms_per_round());
  fields.emplace_back(prefix + "rounds_per_sec_serial",
                      m.serial.rounds_per_sec());
  fields.emplace_back(prefix + "rounds_per_sec_parallel",
                      m.parallel.rounds_per_sec());
  fields.emplace_back(prefix + "speedup", m.speedup);
  fields.emplace_back(prefix + "allocs_per_round_first",
                      m.serial.allocs_per_round.front());
  fields.emplace_back(prefix + "allocs_per_round_steady",
                      m.serial.steady_allocs());
  fields.emplace_back(prefix + "workspace_bytes", m.serial.workspace_bytes);
  fields.emplace_back(prefix + "bit_identical",
                      m.identical ? "yes" : "no");
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const auto nodes = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "nodes", 100'000));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 3));
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_int(argc, argv, "seed", 404));
  // Unlike the figure benches, the parallel pass defaults to all hardware
  // threads — measuring the speedup is this binary's whole point.
  const auto inner_threads = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "inner-threads", 0));
  const bool sweep = bench::arg_int(argc, argv, "sweep", 0) != 0;
  const bool self_check = bench::arg_int(argc, argv, "self-check", 0) != 0;
  const std::size_t workers =
      util::ThreadPool::resolve_thread_count(inner_threads);

  bench::print_header("Round latency",
                      "single-run wall time, serial vs inner-parallel");
  std::printf("nodes=%zu rounds=%zu defection=5%% inner-threads=%zu "
              "(%zu workers; override with --nodes/--rounds/"
              "--inner-threads; --sweep=1 for 1000/3000/10000 nodes; "
              "--self-check=1 for the CI determinism gate)\n",
              nodes, rounds, inner_threads, workers);

  if (sweep) {
    // Fixed size ladder for the perf trajectory: one BENCH file with the
    // per-size fields prefixed n<size>_, diffable by bench_compare.py.
    const std::size_t sizes[] = {1000, 3000, 10000};
    bench::JsonFields fields{{"rounds", rounds}, {"workers", workers}};
    bool all_identical = true;
    double total_ms = 0.0;
    for (const std::size_t size : sizes) {
      const std::string prefix = "n" + std::to_string(size) + "_";
      const Measurement m = measure_size(size, rounds, seed, inner_threads,
                                         workers, prefix, fields);
      all_identical = all_identical && m.identical;
      total_ms += m.serial.wall_ms + m.parallel.wall_ms;
    }
    fields.emplace_back("wall_ms", total_ms);
    bench::emit_json("round_latency", fields);
    if (!all_identical) {
      std::fprintf(stderr,
                   "ERROR: inner-parallel results diverged from serial\n");
      return 1;
    }
    return 0;
  }

  bench::JsonFields fields{{"nodes", nodes},
                           {"rounds", rounds},
                           {"inner_threads", inner_threads},
                           {"workers", workers}};
  const Measurement m = measure_size(nodes, rounds, seed, inner_threads,
                                     workers, "", fields);

  if (!self_check) {
    // Accumulator memory story at this node count: record every per-node
    // outcome of the serial pass into both reduction backends. The exact
    // matrix grows with nodes x rounds; the streaming sketch must stay at
    // O(rounds) — the state a paper-scale sharded sweep ships per shard.
    const auto exact = sim::make_accumulator(sim::AggBackend::Exact, rounds);
    const auto streaming =
        sim::make_accumulator(sim::AggBackend::Streaming, rounds);
    for (std::size_t r = 0; r < rounds; ++r) {
      for (const sim::NodeOutcome outcome : m.serial.outcomes[r]) {
        const double sample = static_cast<double>(outcome);
        exact->record(r, sample);
        streaming->record(r, sample);
      }
    }
    const double mem_ratio =
        static_cast<double>(exact->memory_bytes()) /
        static_cast<double>(streaming->memory_bytes());
    std::printf("accumulator memory (%zu samples/round): exact %.1f KiB, "
                "streaming %.1f KiB (%.1fx smaller)\n",
                nodes, static_cast<double>(exact->memory_bytes()) / 1024.0,
                static_cast<double>(streaming->memory_bytes()) / 1024.0,
                mem_ratio);
    fields.emplace_back("exact_accum_bytes", exact->memory_bytes());
    fields.emplace_back("streaming_accum_bytes", streaming->memory_bytes());
    fields.emplace_back("accum_memory_ratio", mem_ratio);
  }
  fields.emplace_back("wall_ms", m.serial.wall_ms + m.parallel.wall_ms);
  bench::emit_json("round_latency", fields);

  if (!m.identical) {
    std::fprintf(stderr,
                 "ERROR: inner-parallel results diverged from serial\n");
    return 1;
  }
  if (self_check) {
    std::printf("\nself-check OK: serial and inner-parallel rounds are "
                "bit-identical\n");
  } else {
    std::printf("\nShape check: speedup > 1.5x expected at >=100k nodes on\n"
                "4+ cores; ~1.0x on a single-core machine is normal.\n");
  }
  return 0;
}
