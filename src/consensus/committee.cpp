#include "consensus/committee.hpp"

#include "util/require.hpp"

namespace roleshare::consensus {

std::uint64_t Committee::total_weight() const {
  std::uint64_t total = 0;
  for (const CommitteeMember& m : members) total += m.weight;
  return total;
}

bool Committee::contains(ledger::NodeId node) const {
  return find(node) != nullptr;
}

const CommitteeMember* Committee::find(ledger::NodeId node) const {
  for (const CommitteeMember& m : members)
    if (m.node == node) return &m;
  return nullptr;
}

Committee elect_committee(const std::vector<crypto::KeyPair>& keys,
                          const std::vector<std::int64_t>& stakes,
                          std::uint64_t round, std::uint32_t step,
                          const crypto::Hash256& prev_seed,
                          std::uint64_t expected_stake,
                          std::int64_t total_stake,
                          const util::InnerExecutor& exec) {
  RS_REQUIRE(keys.size() == stakes.size(), "keys/stakes size mismatch");
  Committee committee;
  committee.round = round;
  committee.step = step;

  const crypto::VrfInput input{round, step, prev_seed};
  const crypto::SortitionParams params{expected_stake, total_stake};
  // The VRF evaluations are the expensive part; the winner collection is a
  // cheap serial scan in node order, which keeps `members` deterministic.
  const std::vector<crypto::SortitionResult> draws =
      crypto::sortition_batch(keys, input, stakes, params, exec);
  for (std::size_t i = 0; i < draws.size(); ++i) {
    if (draws[i].selected()) {
      committee.members.push_back(CommitteeMember{
          static_cast<ledger::NodeId>(i), draws[i].sub_users, draws[i]});
    }
  }
  return committee;
}

}  // namespace roleshare::consensus
