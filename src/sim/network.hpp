// Simulated Algorand network: accounts, keys, behaviours, gossip overlay
// and blockchain — the container the round engine operates on.
#pragma once

#include <memory>
#include <vector>

#include "crypto/keypair.hpp"
#include "econ/cost_model.hpp"
#include "ledger/account_table.hpp"
#include "ledger/blockchain.hpp"
#include "ledger/txpool.hpp"
#include "net/delay_model.hpp"
#include "net/synchrony.hpp"
#include "net/topology.hpp"
#include "sim/behavior.hpp"
#include "util/distributions.hpp"

namespace roleshare::sim {

struct NetworkConfig {
  std::size_t node_count = 300;
  std::uint64_t seed = 1;
  /// Gossip fan-out (the paper's simulator: 5).
  std::size_t fan_out = 5;
  /// Stake distribution for initial balances (paper Fig 3: U(1, 50)).
  std::int64_t stake_lo = 1;
  std::int64_t stake_hi = 50;
  /// Fraction of nodes scripted to defect (Fig 3: 0.05 .. 0.30) — selected
  /// uniformly at random.
  double defection_rate = 0.0;
  /// Fraction of faulty (offline) nodes.
  double faulty_rate = 0.0;
  /// Remaining nodes' behaviour: honest by default; set true to make them
  /// payoff-driven selfish deciders instead.
  bool selfish_residual = false;
  /// Per-hop delay range (uniform), ms.
  double delay_lo_ms = 20.0;
  double delay_hi_ms = 120.0;
  net::SynchronyConfig synchrony{};
};

class Network {
 public:
  explicit Network(const NetworkConfig& config);

  std::size_t node_count() const { return keys_.size(); }
  const NetworkConfig& config() const { return config_; }

  const std::vector<crypto::KeyPair>& keys() const { return keys_; }
  const ledger::AccountTable& accounts() const { return accounts_; }
  ledger::AccountTable& accounts() { return accounts_; }
  const ledger::Blockchain& chain() const { return chain_; }
  ledger::Blockchain& chain() { return chain_; }
  ledger::TxPool& txpool() { return txpool_; }
  const net::Topology& topology() const { return topology_; }
  const net::DelayModel& delays() const { return *delays_; }
  net::SynchronyController& synchrony() { return synchrony_; }

  BehaviorType behavior(ledger::NodeId v) const { return behaviors_.at(v); }
  void set_behavior(ledger::NodeId v, BehaviorType b);

  /// Churn support: whether node v is currently part of the network.
  /// Departed nodes keep their keys, account and behaviour but do not
  /// participate in sortition, gossip or rewards until they rejoin — the
  /// round engine indexes live nodes through this mask.
  bool live(ledger::NodeId v) const { return live_mask_.at(v) != 0; }
  const std::vector<std::uint8_t>& live_mask() const { return live_mask_; }
  void set_live(ledger::NodeId v, bool is_live);
  /// Number of live nodes (== node_count() until churn removes some).
  std::size_t live_count() const { return live_count_; }

  /// The strategy each node plays in the upcoming round.
  const std::vector<game::Strategy>& strategies() const {
    return strategies_;
  }

  /// Re-evaluates every node's strategy for the next round.
  /// `last_reward_per_stake` is the observed per-unit reward of the
  /// previous round (µAlgos per Algo), driving the selfish rule.
  void decide_strategies(const econ::CostModel& costs,
                         double last_reward_per_stake, util::Rng& rng);

  /// Overrides the strategies for the upcoming round directly (used by the
  /// best-response strategic loop, which computes them game-theoretically
  /// instead of via behaviour heuristics).
  void set_strategies(std::vector<game::Strategy> strategies);

  /// Root RNG stream for a given round (split deterministically).
  util::Rng round_rng(ledger::Round round) const;

 private:
  NetworkConfig config_;
  util::Rng master_rng_;
  std::vector<crypto::KeyPair> keys_;
  ledger::AccountTable accounts_;
  ledger::Blockchain chain_;
  ledger::TxPool txpool_;
  net::Topology topology_;
  std::unique_ptr<net::DelayModel> delays_;
  net::SynchronyController synchrony_;
  std::vector<BehaviorType> behaviors_;
  std::vector<game::Strategy> strategies_;
  std::vector<std::uint8_t> live_mask_;
  std::size_t live_count_ = 0;
};

}  // namespace roleshare::sim
