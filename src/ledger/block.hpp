// Algorand block: a transaction set (or the empty block), the hash of the
// block it extends, and the next-round random seed Q_r (§II-B2).
#pragma once

#include <vector>

#include "crypto/hash.hpp"
#include "crypto/keypair.hpp"
#include "ledger/transaction.hpp"
#include "ledger/types.hpp"

namespace roleshare::ledger {

class Block {
 public:
  /// Default: a round-0 empty block placeholder (aggregate members keep it
  /// regular); real blocks come from make()/empty().
  Block() = default;

  /// Builds a proposer's block for `round` extending `prev_hash`.
  static Block make(Round round, const crypto::Hash256& prev_hash,
                    const crypto::Hash256& seed,
                    const crypto::PublicKey& proposer,
                    std::vector<Transaction> txns);

  /// The default empty block for a round — what BA* falls back to when no
  /// proposal gathers enough votes. Deterministic: every node derives the
  /// identical empty block for (round, prev_hash).
  static Block empty(Round round, const crypto::Hash256& prev_hash,
                     const crypto::Hash256& seed);

  /// Reassembles a block received over the wire. `is_empty` selects the
  /// empty-block variant (proposer and transactions must then be absent).
  static Block from_parts(Round round, const crypto::Hash256& prev_hash,
                          const crypto::Hash256& seed, bool is_empty,
                          const crypto::PublicKey& proposer,
                          std::vector<Transaction> txns);

  Round round() const { return round_; }
  const crypto::Hash256& prev_hash() const { return prev_hash_; }
  const crypto::Hash256& seed() const { return seed_; }
  const crypto::PublicKey& proposer() const { return proposer_; }
  const std::vector<Transaction>& transactions() const { return txns_; }
  bool is_empty() const { return empty_; }

  /// Sum of transaction fees carried by this block.
  MicroAlgos total_fees() const;

  /// Block hash over the full content.
  crypto::Hash256 hash() const;

 private:
  Round round_ = 0;
  crypto::Hash256 prev_hash_;
  crypto::Hash256 seed_;
  crypto::PublicKey proposer_;  // zero key for the empty block
  std::vector<Transaction> txns_;
  bool empty_ = true;
};

}  // namespace roleshare::ledger
