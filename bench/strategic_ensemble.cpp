// S2 — strategic best-response ensemble: the paper's headline
// incentive-compatibility claim as a shardable Monte-Carlo sweep.
//
// Two panels, one per reward scheme:
//   foundation  stake-proportional Table-III rewards — cooperation
//               unravels (Theorem 2) and consensus degrades with it;
//   role-based  Algorithm-1 minimal B_i — the cooperative profile is
//               self-enforcing (Theorem 3) at a fraction of the cost.
//
// Each panel is an independent ensemble of strategic loops on the shared
// ExperimentRunner engine (run k = stream root.split(k)), reduced through
// a mergeable StrategicPartial — so the ensemble shards, checkpoints and
// resumes exactly like fig3/fig6/fig7 (DESIGN.md §6):
//
//   $ ./strategic_ensemble --runs=9 --run-begin=0 --run-end=3 \
//       --partial-out=s0.json
//   $ ./strategic_ensemble --runs=9 --run-begin=3 --run-end=9 \
//       --checkpoint-every=2 --partial-out=s1.json
//   $ ./merge_partials --series-out=merged.json s0.json s1.json
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "shard_util.hpp"
#include "sim/strategic_loop.hpp"

using namespace roleshare;

namespace {

constexpr sim::SchemeChoice kSchemes[] = {
    sim::SchemeChoice::FoundationStakeProportional,
    sim::SchemeChoice::RoleBasedAdaptive};
constexpr const char* kSchemeNames[] = {"foundation", "role-based"};

}  // namespace

int main(int argc, char** argv) {
  const auto nodes = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "nodes", 150));
  const auto runs =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "runs", 6));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 10));
  const auto seed =
      static_cast<std::uint64_t>(bench::arg_int(argc, argv, "seed", 99));
  const std::size_t threads = bench::arg_threads(argc, argv);
  const std::size_t inner_threads = bench::arg_inner_threads(argc, argv);
  const sim::AggBackend agg = bench::arg_agg(argc, argv);
  const bench::ShardKnobs knobs = bench::arg_shard_knobs(argc, argv, runs);
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");

  bench::print_header("Strategic ensemble",
                      "myopic best-response dynamics per reward scheme");
  std::printf("nodes=%zu runs=%zu rounds=%zu seed=%llu threads=%zu "
              "inner-threads=%zu agg=%s (shard with --run-begin/--run-end "
              "+ --partial-out, resume with --checkpoint-every + "
              "--partial-in)\n",
              nodes, runs, rounds,
              static_cast<unsigned long long>(seed), threads, inner_threads,
              sim::to_string(agg));

  const auto make_config = [&](std::size_t panel, sim::RunShard sub) {
    sim::StrategicEnsembleConfig config;
    config.base.network.node_count = nodes;
    config.base.network.seed = seed;
    config.base.rounds = rounds;
    config.base.scheme = kSchemes[panel];
    config.runs = runs;
    config.threads = threads;
    config.inner_threads = inner_threads;
    config.agg = agg;
    config.shard = sub;
    return config;
  };

  const util::json::Value header = bench::shard_document_header(
      std::string(sim::StrategicPayload::kKind), "strategic_ensemble",
      {{"nodes", nodes},
       {"runs", runs},
       {"rounds", rounds},
       {"seed", seed},
       {"agg", sim::to_string(agg)}});
  const auto panel_meta = [](std::size_t panel) {
    util::json::Value v = util::json::Value::object();
    v.set("scheme", std::string(kSchemeNames[panel]));
    return v;
  };
  const auto run_panel = [&](std::size_t panel, sim::RunShard sub) {
    return sim::run_strategic_partial(make_config(panel, sub));
  };

  const bench::WallTimer timer;
  const auto exec = bench::run_sharded_panels<sim::StrategicPartial>(
      knobs, 2, header, panel_meta, run_panel);
  if (bench::shard_worker_done(exec, knobs, header, timer.elapsed_ms()))
    return 0;

  bench::JsonFields json_fields = {
      {"nodes", static_cast<double>(nodes)},
      {"runs", static_cast<double>(runs)},
      {"rounds", static_cast<double>(rounds)},
      {"threads", static_cast<double>(threads)},
      {"inner_threads", static_cast<double>(inner_threads)},
      {"agg", sim::to_string(agg)}};
  std::size_t accumulator_bytes = 0;
  util::json::Value series_panels = util::json::Value::array();

  for (std::size_t panel = 0; panel < 2; ++panel) {
    const sim::StrategicEnsembleResult result =
        exec.partials[panel].finalize();
    accumulator_bytes += result.accumulator_bytes;

    std::printf("\n--- %s rewards ---\n", kSchemeNames[panel]);
    std::printf("%6s %14s %10s %14s\n", "round", "cooperating%", "final%",
                "reward(Algos)");
    for (std::size_t r = 0; r < rounds; ++r) {
      std::printf("%6zu %14.1f %10.1f %14.4f\n", r + 1,
                  result.cooperation_series[r] * 100,
                  result.final_series[r] * 100, result.reward_series[r]);
    }
    std::printf("mean total paid: %.4f Algos | cooperation at horizon: "
                "%.0f%%\n",
                result.mean_total_reward_algos,
                result.mean_final_cooperation * 100);
    json_fields.emplace_back(
        std::string("final_coop_") + kSchemeNames[panel],
        result.mean_final_cooperation);
    json_fields.emplace_back(
        std::string("total_reward_") + kSchemeNames[panel],
        result.mean_total_reward_algos);

    util::json::Value v = panel_meta(panel);
    v.set("series", bench::strategic_series_json(result));
    series_panels.push_back(std::move(v));
  }

  if (!series_out.empty()) {
    bench::write_series_document(series_out, header, exec.window_begin,
                                 exec.cursor, std::move(series_panels));
    std::printf("\n[series] wrote %s\n", series_out.c_str());
  }

  json_fields.emplace_back("accumulator_bytes",
                           static_cast<double>(accumulator_bytes));
  json_fields.emplace_back("wall_ms", timer.elapsed_ms());
  bench::emit_json("strategic_ensemble", json_fields);

  std::printf("\nShape check: cooperation under the Foundation scheme decays\n"
              "toward free-riding while the role-based scheme holds it at\n"
              "(or near) 100%% — at a far smaller total reward.\n");
  return 0;
}
