// Defection cascade: the paper's §III-C motivation scenario. Honest-but-
// selfish nodes observe that rewards do not cover their costs, defect, stop
// relaying gossip — and the network slides from final consensus through
// tentative blocks into no consensus at all.
//
//   $ ./defection_cascade [--runs=5] [--rounds=12] [--threads=1]
//
// Runs execute on the shared ExperimentRunner engine; --threads=N spreads
// them across cores with bit-identical aggregates.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/defection_experiment.hpp"

using namespace roleshare;

int main(int argc, char** argv) {
  const auto runs =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "runs", 5));
  const auto rounds =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "rounds", 12));
  const std::size_t threads = bench::arg_threads(argc, argv);

  std::printf("Defection cascade on a 300-node network, stakes U(1,50),\n"
              "fan-out 5; %zu runs x %zu rounds per defection level "
              "(threads=%zu).\n\n",
              runs, rounds, threads);
  std::printf("%10s %10s %12s %10s %18s\n", "defection", "final%",
              "tentative%", "none%", "chain progress");

  for (const double rate : {0.0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.40}) {
    sim::DefectionExperimentConfig config;
    config.network.node_count = 300;
    config.network.seed = 7;
    config.network.defection_rate = rate;
    config.runs = runs;
    config.rounds = rounds;
    config.threads = threads;

    const sim::DefectionSeries series = sim::run_defection_experiment(config);
    double final_pct = 0, tentative_pct = 0, none_pct = 0;
    for (const sim::RoundAggregate& agg : series.rounds) {
      final_pct += agg.final_pct;
      tentative_pct += agg.tentative_pct;
      none_pct += agg.none_pct;
    }
    const auto n = static_cast<double>(series.rounds.size());
    std::printf("%9.0f%% %10.1f %12.1f %10.1f %17.0f%%\n", rate * 100,
                final_pct / n, tentative_pct / n, none_pct / n,
                series.runs_with_progress * 100);
  }

  std::printf("\nReading: once defectors stop relaying votes and proposals,\n"
              "committee quorums miss their thresholds and nodes fall back\n"
              "to tentative or no blocks — the Fig-3 collapse.\n");
  return 0;
}
