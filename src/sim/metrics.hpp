// Aggregation of per-round outcomes across simulation runs — the paper's
// 20%-trimmed-mean methodology (§III-C) producing the Fig-3 series.
// Built on the reusable PerRoundSamples aggregator so per-run partials can
// be merged in run-index order by the experiment runner.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/aggregators.hpp"
#include "sim/round_engine.hpp"

namespace roleshare::sim {

/// Trimmed-mean outcome fractions for one round index.
struct RoundAggregate {
  double final_pct = 0.0;      // % of nodes extracting a final block
  double tentative_pct = 0.0;  // % extracting only a tentative block
  double none_pct = 0.0;       // % extracting no block
};

class OutcomeMetrics {
 public:
  explicit OutcomeMetrics(std::size_t rounds);

  /// Records one run's result for `round_index` (0-based).
  void record(std::size_t round_index, const RoundResult& result);

  /// Same, from already-computed percentages (0..100) — the form per-run
  /// partials carry across the thread-pool boundary.
  void record(std::size_t round_index, double final_pct, double tentative_pct,
              double none_pct);

  /// Appends every sample of `other` in round order (run-index-ordered
  /// reduction; requires equal round counts).
  void merge(const OutcomeMetrics& other);

  std::size_t rounds() const { return final_.rounds(); }
  std::size_t runs_recorded(std::size_t round_index) const;

  /// Trimmed-mean series over all recorded runs (percentages, 0..100).
  std::vector<RoundAggregate> aggregate(double trim_fraction = 0.2) const;

 private:
  PerRoundSamples final_;
  PerRoundSamples tentative_;
  PerRoundSamples none_;
};

}  // namespace roleshare::sim
