// Binary wire format for protocol messages (§II-B2: Transaction, Voting,
// Block proposal, Credential). Little-endian fixed-width integers,
// length-prefixed sequences, no padding — deterministic byte streams so
// message hashes are stable across platforms.
//
// Decoding is strict: trailing bytes, truncated input or malformed
// variants raise DecodeError (a malicious peer must not be able to crash
// a node with a crafted message).
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "ledger/block.hpp"
#include "ledger/transaction.hpp"

namespace roleshare::ledger {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what)
      : std::runtime_error("decode error: " + what) {}
};

/// Append-only byte sink with primitive writers.
class Encoder {
 public:
  const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  std::vector<std::uint8_t> take() { return std::move(buffer_); }

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_i64(std::int64_t v);
  void put_hash(const crypto::Hash256& h);
  void put_bytes(std::span<const std::uint8_t> data);  // length-prefixed

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Bounds-checked cursor over an immutable byte view.
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint8_t> data) : data_(data) {}

  bool done() const { return offset_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - offset_; }

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  std::int64_t get_i64();
  crypto::Hash256 get_hash();
  std::vector<std::uint8_t> get_bytes();

  /// Throws DecodeError unless the input was consumed exactly.
  void expect_done() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t offset_ = 0;
};

/// Transaction <-> bytes. Signature travels with the message; decode
/// re-verifies structural validity but not balances.
std::vector<std::uint8_t> encode_transaction(const Transaction& txn);
Transaction decode_transaction(std::span<const std::uint8_t> bytes);

/// Block <-> bytes (including its transaction list).
std::vector<std::uint8_t> encode_block(const Block& block);
Block decode_block(std::span<const std::uint8_t> bytes);

}  // namespace roleshare::ledger
