// The mergeable accumulator layer: exact-vs-streaming agreement, merge
// diagnostics, JSON round-trips, O(rounds) memory, and the sharded
// defection-experiment workflow's bit-identity guarantee.
#include "sim/aggregators.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "sim/defection_experiment.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace roleshare::sim {
namespace {

// ---------------------------------------------------------------------
// Accumulator-level properties.

TEST(AggBackend, NamesRoundTrip) {
  EXPECT_STREQ(to_string(AggBackend::Exact), "exact");
  EXPECT_STREQ(to_string(AggBackend::Streaming), "streaming");
  EXPECT_EQ(parse_agg_backend("exact"), AggBackend::Exact);
  EXPECT_EQ(parse_agg_backend("streaming"), AggBackend::Streaming);
  EXPECT_THROW(parse_agg_backend("columnar"), std::invalid_argument);
}

TEST(ExactAccumulator, MatchesPerRoundSamplesBitwise) {
  util::Rng rng(3);
  PerRoundSamples reference(4);
  const auto acc = make_accumulator(AggBackend::Exact, 4);
  for (std::size_t run = 0; run < 40; ++run) {
    for (std::size_t r = 0; r < 4; ++r) {
      const double x = rng.normal(50.0, 20.0);
      reference.record(r, x);
      acc->record(r, x);
    }
  }
  EXPECT_EQ(acc->trimmed_mean_series(0.2), reference.trimmed_mean_series(0.2));
  EXPECT_EQ(acc->mean_series(), reference.mean_series());
  EXPECT_EQ(acc->percentile_series(75.0), reference.percentile_series(75.0));
}

TEST(PerRoundSamples, MergeMismatchNamesBothRoundCounts) {
  PerRoundSamples a(2), b(3);
  try {
    a.merge(b);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("this has 2 rounds"), std::string::npos) << what;
    EXPECT_NE(what.find("other has 3"), std::string::npos) << what;
  }
}

TEST(RoundAccumulator, MergeRejectsBackendMismatchNamingBoth) {
  const auto exact = make_accumulator(AggBackend::Exact, 2);
  const auto streaming = make_accumulator(AggBackend::Streaming, 2);
  try {
    exact->merge(*streaming);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("this is exact"), std::string::npos) << what;
    EXPECT_NE(what.find("other is streaming"), std::string::npos) << what;
  }
}

TEST(RoundAccumulator, EmptyRoundsReduceToNaNUnderBothBackends) {
  // The churn-emptied-cohort convention must hold identically for both
  // backends: quiet NaN, never a throw or a fabricated 0.0.
  for (const AggBackend backend : {AggBackend::Exact, AggBackend::Streaming}) {
    const auto acc = make_accumulator(backend, 3);
    acc->record(0, 5.0);
    acc->record(2, 7.0);
    EXPECT_TRUE(acc->empty_round(1));
    EXPECT_FALSE(acc->empty_round(0));
    for (const auto& series :
         {acc->trimmed_mean_series(0.2), acc->mean_series(),
          acc->percentile_series(50.0), acc->percentile_series(0.0),
          acc->percentile_series(100.0)}) {
      ASSERT_EQ(series.size(), 3u);
      EXPECT_EQ(series[0], 5.0) << to_string(backend);
      EXPECT_TRUE(std::isnan(series[1])) << to_string(backend);
      EXPECT_EQ(series[2], 7.0) << to_string(backend);
    }
  }
}

TEST(StreamingAccumulator, ExactWhileRunsFitTheReservoir) {
  // At or below the reservoir capacity, the streaming backend IS exact
  // (the paper's default 100-run sweeps under the default capacity 256).
  util::Rng rng(9);
  const auto exact = make_accumulator(AggBackend::Exact, 3);
  const auto streaming = make_accumulator(AggBackend::Streaming, 3);
  for (std::size_t run = 0; run < 100; ++run) {
    for (std::size_t r = 0; r < 3; ++r) {
      const double x = rng.uniform_real(0.0, 100.0);
      exact->record(r, x);
      streaming->record(r, x);
    }
  }
  EXPECT_EQ(streaming->trimmed_mean_series(0.2),
            exact->trimmed_mean_series(0.2));
  EXPECT_EQ(streaming->percentile_series(90.0),
            exact->percentile_series(90.0));
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(streaming->mean_series()[r], exact->mean_series()[r], 1e-9);
    EXPECT_EQ(streaming->count(r), exact->count(r));
  }
}

TEST(StreamingAccumulator, ErrorBoundVsExactBeyondCapacity) {
  // The documented error bound: 20k samples/round vs capacity 256. The
  // trimmed mean / median come from the reservoir (rank SE ~
  // sqrt(p(1-p)/256) -> a few percent of sigma), on-grid percentiles
  // from P². Mean / min / max stay exact (RunningStats).
  util::Rng rng(17);
  const auto exact = make_accumulator(AggBackend::Exact, 2);
  const auto streaming = make_accumulator(AggBackend::Streaming, 2);
  for (std::size_t run = 0; run < 20'000; ++run) {
    for (std::size_t r = 0; r < 2; ++r) {
      const double x = rng.normal(100.0, 15.0);
      exact->record(r, x);
      streaming->record(r, x);
    }
  }
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_NEAR(streaming->mean_series()[r], exact->mean_series()[r], 1e-9);
    EXPECT_NEAR(streaming->trimmed_mean_series(0.2)[r],
                exact->trimmed_mean_series(0.2)[r], 4.0);  // ~0.25 sigma
    EXPECT_NEAR(streaming->percentile_series(50.0)[r],
                exact->percentile_series(50.0)[r], 2.0);  // P² grid
    EXPECT_NEAR(streaming->percentile_series(95.0)[r],
                exact->percentile_series(95.0)[r], 3.0);
    EXPECT_EQ(streaming->percentile_series(0.0)[r],
              exact->percentile_series(0.0)[r]);  // min: exact
    EXPECT_EQ(streaming->percentile_series(100.0)[r],
              exact->percentile_series(100.0)[r]);  // max: exact
  }
}

TEST(StreamingAccumulator, MemoryIndependentOfRunCount) {
  const auto small = make_accumulator(AggBackend::Streaming, 5);
  const auto large = make_accumulator(AggBackend::Streaming, 5);
  const auto exact_small = make_accumulator(AggBackend::Exact, 5);
  const auto exact_large = make_accumulator(AggBackend::Exact, 5);
  util::Rng rng(23);
  for (std::size_t run = 0; run < 100; ++run)
    for (std::size_t r = 0; r < 5; ++r) {
      const double x = rng.uniform01();
      small->record(r, x);
      exact_small->record(r, x);
    }
  for (std::size_t run = 0; run < 50'000; ++run)
    for (std::size_t r = 0; r < 5; ++r) {
      const double x = rng.uniform01();
      large->record(r, x);
      exact_large->record(r, x);
    }
  // O(rounds): 500x the runs, identical streaming footprint.
  EXPECT_EQ(large->memory_bytes(), small->memory_bytes());
  // The exact matrix grows roughly linearly instead.
  EXPECT_GT(exact_large->memory_bytes(), exact_small->memory_bytes() * 100);
  // And at this scale streaming is far below exact.
  EXPECT_LT(large->memory_bytes() * 10, exact_large->memory_bytes());
}

TEST(RoundAccumulator, JsonRoundTripIsExactForBothBackends) {
  util::Rng rng(31);
  for (const AggBackend backend : {AggBackend::Exact, AggBackend::Streaming}) {
    const auto acc = make_accumulator(backend, 3);
    for (std::size_t run = 0; run < 700; ++run)
      for (std::size_t r = 0; r < 3; ++r)
        acc->record(r, rng.normal(0.0, 1.0));
    const auto restored = accumulator_from_json(
        util::json::parse(acc->to_json().dump()));
    EXPECT_EQ(restored->backend(), backend);
    EXPECT_EQ(restored->rounds(), acc->rounds());
    // Every series reproduces bit for bit after the %.17g round-trip.
    EXPECT_EQ(restored->trimmed_mean_series(0.2),
              acc->trimmed_mean_series(0.2));
    EXPECT_EQ(restored->mean_series(), acc->mean_series());
    EXPECT_EQ(restored->percentile_series(50.0),
              acc->percentile_series(50.0));
    EXPECT_EQ(restored->percentile_series(33.0),
              acc->percentile_series(33.0));
  }
}

TEST(RoundAccumulator, ShardedMergeEqualsSingleFeed) {
  // Exact backend: two half-range partials merged == one full feed, bit
  // for bit. Streaming: mean/min/max exact, quantiles within the bound.
  util::Rng rng(41);
  std::vector<double> stream;
  for (std::size_t i = 0; i < 6'000; ++i) stream.push_back(rng.normal(10, 2));

  for (const AggBackend backend : {AggBackend::Exact, AggBackend::Streaming}) {
    const auto whole = make_accumulator(backend, 2);
    const auto left = make_accumulator(backend, 2);
    const auto right = make_accumulator(backend, 2);
    for (std::size_t i = 0; i < stream.size(); ++i) {
      const std::size_t r = i % 2;
      whole->record(r, stream[i]);
      (i < stream.size() / 2 ? *left : *right).record(r, stream[i]);
    }
    left->merge(*right);
    for (std::size_t r = 0; r < 2; ++r)
      EXPECT_EQ(left->count(r), whole->count(r));
    if (backend == AggBackend::Exact) {
      EXPECT_EQ(left->trimmed_mean_series(0.2),
                whole->trimmed_mean_series(0.2));
      EXPECT_EQ(left->percentile_series(25.0),
                whole->percentile_series(25.0));
      EXPECT_EQ(left->mean_series(), whole->mean_series());
    } else {
      for (std::size_t r = 0; r < 2; ++r) {
        EXPECT_NEAR(left->mean_series()[r], whole->mean_series()[r], 1e-9);
        EXPECT_EQ(left->percentile_series(0.0)[r],
                  whole->percentile_series(0.0)[r]);
        EXPECT_NEAR(left->trimmed_mean_series(0.2)[r],
                    whole->trimmed_mean_series(0.2)[r], 0.5);
        EXPECT_NEAR(left->percentile_series(50.0)[r],
                    whole->percentile_series(50.0)[r], 0.5);
      }
    }
  }
}

// ---------------------------------------------------------------------
// The sharded defection experiment (the merge_partials workflow,
// in-process).

DefectionExperimentConfig shard_test_config(AggBackend agg) {
  DefectionExperimentConfig config;
  config.network.node_count = 60;
  config.network.seed = 4242;
  config.network.defection_rate = 0.15;
  config.runs = 6;
  config.rounds = 3;
  config.agg = agg;
  return config;
}

void expect_series_equal(const DefectionSeries& a, const DefectionSeries& b) {
  ASSERT_EQ(a.rounds.size(), b.rounds.size());
  for (std::size_t r = 0; r < a.rounds.size(); ++r) {
    EXPECT_EQ(a.rounds[r].final_pct, b.rounds[r].final_pct) << "round " << r;
    EXPECT_EQ(a.rounds[r].tentative_pct, b.rounds[r].tentative_pct);
    EXPECT_EQ(a.rounds[r].none_pct, b.rounds[r].none_pct);
  }
  EXPECT_EQ(a.runs_with_progress, b.runs_with_progress);
  EXPECT_EQ(a.live_series, b.live_series);
  EXPECT_EQ(a.cooperation_series, b.cooperation_series);
  EXPECT_EQ(a.min_live, b.min_live);
  EXPECT_EQ(a.max_live, b.max_live);
}

TEST(DefectionSharding, ExactMergeBitIdenticalToSingleProcess) {
  // The acceptance criterion: N shards + merge == one threads=N run,
  // including a JSON round-trip of every partial (the on-disk workflow).
  DefectionExperimentConfig whole_config = shard_test_config(AggBackend::Exact);
  whole_config.threads = 3;  // parallel single-process baseline
  const DefectionSeries whole = run_defection_experiment(whole_config);

  std::vector<DefectionPartial> partials;
  for (const auto& [begin, end] :
       std::vector<std::pair<std::size_t, std::size_t>>{{0, 2}, {2, 4}, {4, 6}}) {
    DefectionExperimentConfig config = shard_test_config(AggBackend::Exact);
    config.shard = RunShard{begin, end};
    // Round-trip through the interchange format, as merge_partials does.
    partials.push_back(DefectionPartial::from_json(util::json::parse(
        run_defection_partial(config).to_json().dump())));
  }
  DefectionPartial merged = std::move(partials[0]);
  merged.merge(partials[1]);
  merged.merge(partials[2]);
  EXPECT_EQ(merged.run_begin(), 0u);
  EXPECT_EQ(merged.run_end(), 6u);
  expect_series_equal(merged.finalize(0.2), whole);
}

TEST(DefectionSharding, MergeRejectsGapsAndWrongExperiments) {
  DefectionExperimentConfig config = shard_test_config(AggBackend::Exact);
  config.shard = RunShard{0, 2};
  DefectionPartial first = run_defection_partial(config);
  config.shard = RunShard{4, 6};  // leaves a hole at [2, 4)
  const DefectionPartial gapped = run_defection_partial(config);
  try {
    first.merge(gapped);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ends at run 2"), std::string::npos) << what;
    EXPECT_NE(what.find("begins at run 4"), std::string::npos) << what;
  }

  config = shard_test_config(AggBackend::Exact);
  config.runs = 8;  // different experiment shape
  config.shard = RunShard{2, 4};
  const DefectionPartial alien = run_defection_partial(config);
  EXPECT_THROW(first.merge(alien), std::invalid_argument);
}

TEST(DefectionSharding, StreamingShardsWithinToleranceOfExact) {
  // Streaming shard merges are not bit-identical, but must stay within
  // the documented bound of the exact series (here runs << capacity, so
  // the reservoirs concatenate exactly and only the P² fallback and
  // Chan-mean differ).
  const DefectionSeries exact =
      run_defection_experiment(shard_test_config(AggBackend::Exact));

  DefectionExperimentConfig config = shard_test_config(AggBackend::Streaming);
  config.shard = RunShard{0, 3};
  DefectionPartial merged = run_defection_partial(config);
  config.shard = RunShard{3, 6};
  merged.merge(run_defection_partial(config));
  const DefectionSeries streamed = merged.finalize(0.2);

  ASSERT_EQ(streamed.rounds.size(), exact.rounds.size());
  for (std::size_t r = 0; r < exact.rounds.size(); ++r) {
    EXPECT_NEAR(streamed.rounds[r].final_pct, exact.rounds[r].final_pct, 1e-9);
    EXPECT_NEAR(streamed.rounds[r].none_pct, exact.rounds[r].none_pct, 1e-9);
  }
  EXPECT_EQ(streamed.runs_with_progress, exact.runs_with_progress);
  EXPECT_EQ(streamed.min_live, exact.min_live);
  EXPECT_EQ(streamed.max_live, exact.max_live);
  for (std::size_t r = 0; r < exact.live_series.size(); ++r) {
    EXPECT_NEAR(streamed.live_series[r], exact.live_series[r], 1e-9);
    EXPECT_NEAR(streamed.cooperation_series[r], exact.cooperation_series[r],
                1e-9);
  }
}

TEST(DefectionSharding, StreamingMemoryBelowExactAtScale) {
  // Same experiment, both backends: the streaming accumulator footprint
  // must undercut the exact matrix once runs grow, and must not grow
  // with the run count (spot-checked at two run counts).
  DefectionExperimentConfig config = shard_test_config(AggBackend::Streaming);
  config.network.node_count = 30;
  config.runs = 400;  // > default reservoir capacity 256
  const std::size_t streaming_bytes =
      run_defection_partial(config).accumulator_bytes();
  config.agg = AggBackend::Exact;
  const std::size_t exact_bytes =
      run_defection_partial(config).accumulator_bytes();
  EXPECT_LT(streaming_bytes, exact_bytes);

  config.agg = AggBackend::Streaming;
  config.runs = 800;
  EXPECT_EQ(run_defection_partial(config).accumulator_bytes(),
            streaming_bytes);
}

// ---------------------------------------------------------------------
// Streaming-vs-exact agreement across every scenario policy (satellite).

TEST(DefectionSharding, StreamingAgreesWithExactAcrossScenarioPolicies) {
  struct PolicyCase {
    const char* name;
    PolicyKind kind;
    bool churn;
  };
  const PolicyCase cases[] = {
      {"scripted", PolicyKind::Scripted, false},
      {"adaptive", PolicyKind::AdaptiveDefect, false},
      {"stake", PolicyKind::StakeCorrelatedDefect, false},
      {"churn", PolicyKind::Scripted, true},
  };
  for (const PolicyCase& c : cases) {
    DefectionExperimentConfig config;
    config.network.node_count = 40;
    config.network.seed = 777;
    config.network.defection_rate = 0.2;
    config.runs = 4;
    config.rounds = 3;
    config.policy.kind = c.kind;
    if (c.kind == PolicyKind::StakeCorrelatedDefect) {
      config.policy.defect_at_bottom = 0.4;
      config.policy.defect_at_top = 0.0;
    }
    if (c.churn) {
      config.policy.churn.leave_probability = 0.1;
      config.policy.churn.join_probability = 0.15;
      config.policy.churn.min_live = 10;
    }
    config.agg = AggBackend::Exact;
    const DefectionSeries exact = run_defection_experiment(config);
    config.agg = AggBackend::Streaming;
    const DefectionSeries streamed = run_defection_experiment(config);
    // 4 runs fit any reservoir: identical trimmed means, near-identical
    // means (Welford vs sum-divide).
    ASSERT_EQ(streamed.rounds.size(), exact.rounds.size()) << c.name;
    for (std::size_t r = 0; r < exact.rounds.size(); ++r) {
      EXPECT_EQ(streamed.rounds[r].final_pct, exact.rounds[r].final_pct)
          << c.name << " round " << r;
      EXPECT_EQ(streamed.rounds[r].tentative_pct,
                exact.rounds[r].tentative_pct) << c.name;
      EXPECT_EQ(streamed.rounds[r].none_pct, exact.rounds[r].none_pct)
          << c.name;
    }
    for (std::size_t r = 0; r < exact.live_series.size(); ++r) {
      EXPECT_NEAR(streamed.live_series[r], exact.live_series[r], 1e-9)
          << c.name;
      EXPECT_NEAR(streamed.cooperation_series[r],
                  exact.cooperation_series[r], 1e-9) << c.name;
    }
    EXPECT_EQ(streamed.runs_with_progress, exact.runs_with_progress)
        << c.name;
    EXPECT_EQ(streamed.min_live, exact.min_live) << c.name;
    EXPECT_EQ(streamed.max_live, exact.max_live) << c.name;
  }
}

}  // namespace
}  // namespace roleshare::sim
