// Node behaviour types (§III-C): honest (always cooperate), honest-but-
// selfish (cooperate iff reward exceeds cost), malicious (arbitrary),
// faulty (offline), and the policy-driven types the scenario layer
// (sim/scenario_policy.hpp) re-decides every round: adaptive defectors
// (best response to observed rewards) and stake-correlated defectors
// (defection probability falling with stake percentile).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "econ/cost_model.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace roleshare::sim {

enum class BehaviorType : std::uint8_t {
  Honest,         // altruistic: cooperates unconditionally
  Selfish,        // honest-but-selfish: strategic C/D choice
  ScriptedDefect, // selfish node scripted to defect (Fig-3 scenarios)
  Malicious,      // arbitrary C/D (never modelled as forging, §III-C)
  Faulty,         // offline
  AdaptiveDefect, // re-decides each round via game::best_response against
                  // the observed reward (scenario policy layer)
  StakeCorrelatedDefect,  // defects with a probability derived from its
                          // stake percentile (scenario policy layer)
};

/// Number of BehaviorType enumerators. to_string and choose_strategy are
/// statically checked against it so adding an enumerator without updating
/// them fails the build, not a bench run.
inline constexpr std::size_t kBehaviorTypeCount = 7;
static_assert(static_cast<std::size_t>(BehaviorType::StakeCorrelatedDefect) +
                      1 ==
                  kBehaviorTypeCount,
              "kBehaviorTypeCount is out of sync with BehaviorType — update "
              "it together with to_string and choose_strategy");

constexpr std::string_view to_string(BehaviorType b) {
  switch (b) {
    case BehaviorType::Honest:
      return "honest";
    case BehaviorType::Selfish:
      return "selfish";
    case BehaviorType::ScriptedDefect:
      return "scripted-defect";
    case BehaviorType::Malicious:
      return "malicious";
    case BehaviorType::Faulty:
      return "faulty";
    case BehaviorType::AdaptiveDefect:
      return "adaptive-defect";
    case BehaviorType::StakeCorrelatedDefect:
      return "stake-correlated-defect";
  }
  // Out-of-range values (a corrupted or miscast byte) must fail loudly
  // rather than label bench JSON with a placeholder.
  throw std::invalid_argument("to_string: invalid BehaviorType value");
}

/// Inputs a selfish node uses to decide its round strategy: the per-unit-
/// stake reward it observed last round and its election odds.
struct SelfishContext {
  double last_reward_per_stake = 0.0;  // µAlgos per Algo of stake, last round
  double p_leader = 0.0;               // probability of >= 1 proposer sub-user
  double p_committee = 0.0;            // probability of >= 1 committee sub-user
  std::int64_t stake = 0;              // this node's stake (Algos)
  /// StakeCorrelatedDefect only: the node's per-round defection
  /// probability, precomputed by the scenario policy from its stake
  /// percentile.
  double defect_probability = 0.0;
};

/// Picks the round strategy for a behaviour.
/// Selfish rule: cooperate iff expected reward (last observed rate x stake)
/// strictly exceeds expected cooperation cost (fixed cost plus election-
/// probability-weighted role costs) minus what defection would still earn.
/// AdaptiveDefect falls back to the same rule here; the scenario policy
/// layer replaces it with a true game::best_response when it has a round
/// to react to. StakeCorrelatedDefect defects with
/// ctx.defect_probability on the caller-provided stream.
game::Strategy choose_strategy(BehaviorType behavior,
                               const econ::CostModel& costs,
                               const SelfishContext& ctx, util::Rng& rng);

}  // namespace roleshare::sim
