#include "crypto/hash.hpp"

#include <algorithm>

#include "util/hex.hpp"

namespace roleshare::crypto {

bool Hash256::is_zero() const {
  return std::all_of(bytes_.begin(), bytes_.end(),
                     [](std::uint8_t b) { return b == 0; });
}

std::uint64_t Hash256::prefix_u64() const {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) value = (value << 8) | bytes_[i];
  return value;
}

double Hash256::ratio() const {
  // Top 53 bits to stay exactly representable in a double.
  return static_cast<double>(prefix_u64() >> 11) * 0x1.0p-53;
}

std::string Hash256::to_hex() const { return util::to_hex(bytes_); }

std::string Hash256::short_hex() const { return to_hex().substr(0, 8); }

HashBuilder::HashBuilder(std::string_view domain_tag) {
  ctx_.update_u64(domain_tag.size());
  ctx_.update(domain_tag);
}

HashBuilder& HashBuilder::add(std::span<const std::uint8_t> bytes) {
  ctx_.update_u64(bytes.size());
  ctx_.update(bytes);
  return *this;
}

HashBuilder& HashBuilder::add(std::string_view text) {
  ctx_.update_u64(text.size());
  ctx_.update(text);
  return *this;
}

HashBuilder& HashBuilder::add(const Hash256& hash) {
  return add(hash.span());
}

HashBuilder& HashBuilder::add_u64(std::uint64_t value) {
  ctx_.update_u64(8);
  ctx_.update_u64(value);
  return *this;
}

HashBuilder& HashBuilder::add_i64(std::int64_t value) {
  return add_u64(static_cast<std::uint64_t>(value));
}

Hash256 HashBuilder::build() { return Hash256(ctx_.finalize()); }

}  // namespace roleshare::crypto
