#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "util/alias_sampler.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"

namespace roleshare::util {
namespace {

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stats, StddevOfConstantIsZero) {
  EXPECT_DOUBLE_EQ(stddev({5, 5, 5, 5}), 0.0);
}

TEST(Stats, StddevKnownValue) {
  // Sample stddev of {2,4,4,4,5,5,7,9} is sqrt(32/7).
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, TrimmedMeanDropsOutliers) {
  // 10 values; 20% trim removes 2 from each end.
  std::vector<double> xs = {-1000, 1, 2, 3, 4, 5, 6, 7, 8, 1000};
  EXPECT_NEAR(trimmed_mean(xs, 0.2), (2 + 3 + 4 + 5 + 6 + 7) / 6.0, 1e-12);
}

TEST(Stats, TrimmedMeanZeroTrimIsMean) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(trimmed_mean(xs, 0.0), mean(xs));
}

TEST(Stats, TrimmedMeanRejectsBadFraction) {
  EXPECT_THROW(trimmed_mean({1.0}, 0.5), std::invalid_argument);
  EXPECT_THROW(trimmed_mean({1.0}, -0.1), std::invalid_argument);
}

TEST(Stats, PercentileEndpoints) {
  const std::vector<double> xs = {10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25);
}

TEST(Stats, PercentileSingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 95), 7.0);
}

TEST(Stats, PercentileRejectsOutOfRangeP) {
  // The guard matters for the shard/accumulator layer: a malformed
  // partial must fail loudly, not index out of bounds.
  const std::vector<double> xs = {10, 20, 30};
  EXPECT_THROW(percentile(xs, -0.001), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 100.001), std::invalid_argument);
  EXPECT_THROW(percentile(xs, -50), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 1e9), std::invalid_argument);
  // NaN fails the range comparison too — still a loud rejection.
  EXPECT_THROW(percentile(xs, std::nan("")), std::invalid_argument);
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);  // empty sample
}

TEST(Stats, SummaryConsistency) {
  const std::vector<double> xs = {3, 1, 4, 1, 5, 9, 2, 6};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 9);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
}

TEST(RunningStats, MatchesBatchStats) {
  const std::vector<double> xs = {1.5, 2.5, -3, 8, 0.25, 4};
  RunningStats rs;
  for (const double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -3);
  EXPECT_DOUBLE_EQ(rs.max(), 8);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(5);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequentialFeed) {
  // Chan-combine of two halves must agree with one sequential pass —
  // the property shard partials rely on.
  const std::vector<double> xs = {1.5, -2.25, 8, 0.125, 4, 7.5, -3, 2};
  RunningStats whole;
  for (const double x : xs) whole.add(x);
  RunningStats left, right;
  for (std::size_t i = 0; i < xs.size(); ++i)
    (i < xs.size() / 2 ? left : right).add(xs[i]);
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats filled;
  filled.add(3);
  filled.add(9);
  RunningStats empty;
  RunningStats a = filled;
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 6.0);
  RunningStats b = empty;
  b.merge(filled);  // adoption
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 6.0);
  EXPECT_DOUBLE_EQ(b.min(), 3.0);
  EXPECT_DOUBLE_EQ(b.max(), 9.0);
}

TEST(RunningStats, StateRoundTrip) {
  RunningStats rs;
  for (const double x : {0.5, 2.5, -1.0}) rs.add(x);
  const RunningStats copy = RunningStats::from_state(
      rs.count(), rs.mean(), rs.m2(), rs.min(), rs.max());
  EXPECT_EQ(copy.count(), rs.count());
  EXPECT_DOUBLE_EQ(copy.mean(), rs.mean());
  EXPECT_DOUBLE_EQ(copy.variance(), rs.variance());
  EXPECT_DOUBLE_EQ(copy.min(), rs.min());
  EXPECT_DOUBLE_EQ(copy.max(), rs.max());
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.bin_count(), 5u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, CountsValues) {
  Histogram h(0.0, 10.0, 5);
  h.add_all({1, 3, 5, 5.5, 9.9});
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 2u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, SaturatesAtEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100);
  h.add(100);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, RenderShowsBars) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  const std::string render = h.render(10);
  EXPECT_NE(render.find('#'), std::string::npos);
  EXPECT_NE(render.find('\n'), std::string::npos);
}

TEST(AliasSampler, MatchesWeights) {
  Rng rng(77);
  const std::vector<double> weights = {2.0, 0.0, 3.0, 5.0};
  AliasSampler sampler(weights);
  std::array<int, 4> counts{};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.2, 0.015);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.3, 0.015);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.5, 0.015);
}

TEST(AliasSampler, UniformWeights) {
  Rng rng(78);
  AliasSampler sampler(std::vector<double>(10, 1.0));
  std::array<int, 10> counts{};
  for (int i = 0; i < 50000; ++i) ++counts[sampler.sample(rng)];
  for (const int c : counts)
    EXPECT_NEAR(c / 50000.0, 0.1, 0.02);
}

TEST(AliasSampler, RejectsDegenerateInput) {
  EXPECT_THROW(AliasSampler({}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({1.0, -1.0}), std::invalid_argument);
}

TEST(AliasSampler, RejectsNonFiniteWeights) {
  EXPECT_THROW(AliasSampler({1.0, std::nan("")}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({1.0, INFINITY}), std::invalid_argument);
  EXPECT_THROW(AliasSampler({-INFINITY, 1.0}), std::invalid_argument);
}

TEST(AliasSampler, SingleEntryAlwaysSamplesZero) {
  Rng rng(79);
  AliasSampler sampler(std::vector<double>{0.25});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(sampler.sample(rng), 0u);
}

TEST(AliasSampler, AllEqualWeightsAreExactlyUniform) {
  // The all-equal fast path pins every cell probability to 1, so a draw
  // reduces to the uniform column pick: the result must equal the raw
  // uniform_int the rng would produce, for ANY equal weight value —
  // including ones whose floating-point sum would not divide back evenly.
  for (const double w : {1.0, 0.1, 3.0e-9, 7.77e12}) {
    AliasSampler sampler(std::vector<double>(7, w));
    Rng sampling(80), manual(80);
    for (int i = 0; i < 500; ++i) {
      const std::size_t got = sampler.sample(sampling);
      const auto expected =
          static_cast<std::size_t>(manual.uniform_int(0, 6));
      (void)manual.uniform01();  // the coin the draw also consumes
      ASSERT_EQ(got, expected) << "weight " << w;
    }
  }
}

TEST(AliasSampler, EveryDrawConsumesExactlyTwoVariates) {
  // One uniform_int + one uniform01 per draw, whatever the table shape —
  // the stream-discipline contract downstream consumers rely on.
  AliasSampler skewed(std::vector<double>{0.001, 5.0, 0.0, 2.5});
  Rng a(81), b(81);
  for (int i = 0; i < 300; ++i) {
    (void)skewed.sample(a);
    (void)b.uniform_int(0, 3);
    (void)b.uniform01();
  }
  EXPECT_EQ(a(), b());
}

TEST(AliasSampler, ZeroWeightEntriesNeverReturned) {
  Rng rng(82);
  AliasSampler sampler(std::vector<double>{0.0, 1.0, 0.0, 1.0, 0.0});
  for (int i = 0; i < 5000; ++i) {
    const std::size_t v = sampler.sample(rng);
    EXPECT_TRUE(v == 1 || v == 3) << v;
  }
}

}  // namespace
}  // namespace roleshare::util
