#include "sim/longhorizon.hpp"

#include <algorithm>

#include "econ/foundation_schedule.hpp"
#include "econ/sparse_payout.hpp"
#include "sim/round_engine.hpp"
#include "sim/sampled_round.hpp"
#include "util/require.hpp"
#include "util/streaming_stats.hpp"

namespace roleshare::sim {

namespace {

/// One run's contribution: the four per-round series plus trailing
/// scalars, in round order so the reduction replays a serial execution.
struct LongHorizonRun {
  std::vector<double> gini;
  std::vector<double> top_share;
  std::vector<double> corr;
  std::vector<double> final_pct;
  double end_gini = 0.0;
  double end_top_share = 0.0;
  double end_corr = 0.0;
  double paid_algos = 0.0;
};

LongHorizonRun execute_run(const LongHorizonConfig& config,
                           std::uint64_t run_seed,
                           util::ThreadPool* inner_pool) {
  NetworkConfig nc;
  nc.node_count = config.node_count;
  nc.seed = run_seed;
  nc.fan_out = config.fan_out;
  nc.stake_lo = config.stake_lo;
  nc.stake_hi = config.stake_hi;
  nc.defection_rate = config.defection_rate;
  nc.faulty_rate = config.faulty_rate;
  nc.delay_lo_ms = config.delay_lo_ms;
  nc.delay_hi_ms = config.delay_hi_ms;
  Network net(nc);

  consensus::ConsensusParams params =
      consensus::ConsensusParams::scaled_for(net.accounts().total_stake());
  params.committee_model = consensus::CommitteeModel::Sampled;
  RoundEngine engine(net, params, inner_pool);

  // The O(N) setup, paid once per run: sparse context, defector cohort,
  // and the streaming concentration sketches seeded from the initial
  // stakes. Every per-round mutation from here on is O(log N) or O(1).
  SparseRoundContext ctx;
  ctx.init_from(net);
  SparseRoundWorkspace scratch;
  SparseRoundResult sparse;

  const std::size_t n = net.node_count();
  std::vector<std::uint8_t> defector(n, 0);
  util::StakeConcentration concentration;
  util::CohortWealthCorrelation cohort;
  const std::vector<game::Strategy>& strategies = net.strategies();
  for (std::size_t v = 0; v < n; ++v) {
    const std::int64_t stake =
        net.accounts().stake(static_cast<ledger::NodeId>(v));
    defector[v] = strategies[v] == game::Strategy::Defect ? 1 : 0;
    concentration.add(stake);
    cohort.add(stake, defector[v] != 0);
  }

  const econ::RewardSplit split(config.alpha, config.beta);
  std::vector<consensus::Role> touched_roles;
  std::vector<std::int64_t> touched_stakes;
  std::vector<ledger::MicroAlgos> touched_amounts;

  LongHorizonRun run;
  run.gini.reserve(config.rounds_per_run);
  run.top_share.reserve(config.rounds_per_run);
  run.corr.reserve(config.rounds_per_run);
  run.final_pct.reserve(config.rounds_per_run);

  ledger::MicroAlgos paid_total = 0;
  for (std::size_t r = 0; r < config.rounds_per_run; ++r) {
    engine.run_round_sparse_into(sparse, ctx, scratch);

    // Role payouts on the touched set; Foundation Table-III budget
    // (1-based rounds — the chain's genesis block sits at height 0).
    const ledger::MicroAlgos budget = econ::FoundationSchedule::
        reward_for_round(std::max<ledger::Round>(sparse.round, 1));
    const std::size_t nt = sparse.touched.size();
    touched_roles.clear();
    touched_stakes.clear();
    for (const SparseNodeRole& t : sparse.touched) {
      touched_roles.push_back(t.role_observed);
      touched_stakes.push_back(t.reward_stake);
    }
    touched_amounts.assign(nt, 0);
    const econ::SparsePayoutTotals totals = econ::distribute_touched(
        split, budget, touched_roles, touched_stakes, sparse.online_stake,
        touched_amounts);
    paid_total += totals.paid;

    // Compound: credit each winner and fold the stake delta into the
    // sparse context and both sketches — O(log N) per payout.
    for (std::size_t i = 0; i < nt; ++i) {
      if (touched_amounts[i] == 0) continue;
      const ledger::NodeId v = sparse.touched[i].node;
      const std::int64_t before = net.accounts().stake(v);
      net.accounts().credit(v, touched_amounts[i]);
      const std::int64_t after = net.accounts().stake(v);
      if (after == before) continue;  // sub-Algo dust: stake unchanged
      concentration.update(before, after);
      cohort.update(before, after, defector[v] != 0);
      ctx.refresh_node(net, v);
    }

    run.gini.push_back(concentration.gini());
    run.top_share.push_back(concentration.top_share(config.top_fraction));
    run.corr.push_back(cohort.correlation());
    run.final_pct.push_back(sparse.final_fraction * 100.0);
  }
  run.end_gini = run.gini.back();
  run.end_top_share = run.top_share.back();
  run.end_corr = run.corr.back();
  run.paid_algos = ledger::to_algos(paid_total);
  return run;
}

}  // namespace

LongHorizonPayload::LongHorizonPayload(std::size_t rounds, AggBackend backend,
                                       const StreamingAggConfig& streaming)
    : gini_(make_accumulator(backend, rounds, streaming)),
      top_share_(make_accumulator(backend, rounds, streaming)),
      corr_(make_accumulator(backend, rounds, streaming)),
      final_pct_(make_accumulator(backend, rounds, streaming)),
      end_gini_(backend),
      end_top_share_(backend),
      end_corr_(backend),
      paid_(backend) {}

LongHorizonPayload::LongHorizonPayload(
    std::unique_ptr<RoundAccumulator> gini,
    std::unique_ptr<RoundAccumulator> top_share,
    std::unique_ptr<RoundAccumulator> corr,
    std::unique_ptr<RoundAccumulator> final_pct, ScalarBank end_gini,
    ScalarBank end_top_share, ScalarBank end_corr, ScalarBank paid)
    : gini_(std::move(gini)),
      top_share_(std::move(top_share)),
      corr_(std::move(corr)),
      final_pct_(std::move(final_pct)),
      end_gini_(std::move(end_gini)),
      end_top_share_(std::move(end_top_share)),
      end_corr_(std::move(end_corr)),
      paid_(std::move(paid)) {}

void LongHorizonPayload::record_round(std::size_t round_index, double gini,
                                      double top_share, double defector_corr,
                                      double final_pct) {
  gini_->record(round_index, gini);
  top_share_->record(round_index, top_share);
  corr_->record(round_index, defector_corr);
  final_pct_->record(round_index, final_pct);
}

void LongHorizonPayload::record_run(double end_gini, double end_top_share,
                                    double end_defector_corr,
                                    double paid_algos) {
  end_gini_.record(end_gini);
  end_top_share_.record(end_top_share);
  end_corr_.record(end_defector_corr);
  paid_.record(paid_algos);
}

void LongHorizonPayload::merge(const LongHorizonPayload& next) {
  gini_->merge(*next.gini_);
  top_share_->merge(*next.top_share_);
  corr_->merge(*next.corr_);
  final_pct_->merge(*next.final_pct_);
  end_gini_.merge(next.end_gini_);
  end_top_share_.merge(next.end_top_share_);
  end_corr_.merge(next.end_corr_);
  paid_.merge(next.paid_);
}

LongHorizonResult LongHorizonPayload::finalize(
    const PartialEnvelope&) const {
  LongHorizonResult result;
  result.gini_per_round = gini_->mean_series();
  result.top_share_per_round = top_share_->mean_series();
  result.defector_corr_per_round = corr_->mean_series();
  result.final_pct_per_round = final_pct_->mean_series();
  result.mean_end_gini = end_gini_.count() > 0 ? end_gini_.mean() : 0.0;
  result.mean_end_top_share =
      end_top_share_.count() > 0 ? end_top_share_.mean() : 0.0;
  result.mean_end_defector_corr =
      end_corr_.count() > 0 ? end_corr_.mean() : 0.0;
  result.mean_paid_algos = paid_.count() > 0 ? paid_.mean() : 0.0;
  result.accumulator_bytes = accumulator_bytes();
  return result;
}

std::size_t LongHorizonPayload::accumulator_bytes() const {
  return gini_->memory_bytes() + top_share_->memory_bytes() +
         corr_->memory_bytes() + final_pct_->memory_bytes() +
         end_gini_.memory_bytes() + end_top_share_.memory_bytes() +
         end_corr_.memory_bytes() + paid_.memory_bytes();
}

util::json::Value LongHorizonPayload::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("gini", gini_->to_json());
  v.set("top_share", top_share_->to_json());
  v.set("corr", corr_->to_json());
  v.set("final_pct", final_pct_->to_json());
  v.set("end_gini", end_gini_.to_json());
  v.set("end_top_share", end_top_share_.to_json());
  v.set("end_corr", end_corr_.to_json());
  v.set("paid", paid_.to_json());
  return v;
}

LongHorizonPayload LongHorizonPayload::from_json(
    const util::json::Value& value, const PartialEnvelope& envelope) {
  LongHorizonPayload p(accumulator_from_json(value.at("gini")),
                       accumulator_from_json(value.at("top_share")),
                       accumulator_from_json(value.at("corr")),
                       accumulator_from_json(value.at("final_pct")),
                       ScalarBank::from_json(value.at("end_gini")),
                       ScalarBank::from_json(value.at("end_top_share")),
                       ScalarBank::from_json(value.at("end_corr")),
                       ScalarBank::from_json(value.at("paid")));
  for (const RoundAccumulator* acc :
       {p.gini_.get(), p.top_share_.get(), p.corr_.get(),
        p.final_pct_.get()}) {
    RS_REQUIRE(acc->backend() == envelope.backend,
               "partial JSON accumulator backend disagrees with the "
               "envelope");
    RS_REQUIRE(acc->rounds() == envelope.rounds,
               "partial JSON accumulator round count disagrees with the "
               "envelope");
  }
  for (const ScalarBank* bank :
       {&p.end_gini_, &p.end_top_share_, &p.end_corr_, &p.paid_}) {
    RS_REQUIRE(bank->backend() == envelope.backend,
               "partial JSON scalar-bank backend disagrees with the "
               "envelope");
  }
  return p;
}

util::json::Value longhorizon_spec_echo(const LongHorizonConfig& config) {
  using util::json::Value;
  Value v = Value::object();
  v.set("experiment", std::string(LongHorizonPayload::kKind));
  v.set("node_count", config.node_count);
  v.set("seed", config.seed);
  v.set("stake_lo", config.stake_lo);
  v.set("stake_hi", config.stake_hi);
  v.set("defection_rate", config.defection_rate);
  v.set("faulty_rate", config.faulty_rate);
  v.set("fan_out", config.fan_out);
  v.set("delay_lo_ms", config.delay_lo_ms);
  v.set("delay_hi_ms", config.delay_hi_ms);
  v.set("runs", config.runs);
  v.set("rounds_per_run", config.rounds_per_run);
  v.set("alpha", config.alpha);
  v.set("beta", config.beta);
  v.set("top_fraction", config.top_fraction);
  v.set("agg", to_string(config.agg));
  v.set("reservoir_capacity", config.streaming.reservoir_capacity);
  Value grid = Value::array();
  for (const double q : config.streaming.p2_grid) grid.push_back(q);
  v.set("p2_grid", std::move(grid));
  return v;
}

LongHorizonPartial run_longhorizon_partial(const LongHorizonConfig& config) {
  RS_REQUIRE(config.node_count > 2, "population too small");
  RS_REQUIRE(config.top_fraction > 0.0 && config.top_fraction <= 1.0,
             "top_fraction in (0, 1]");

  const ExperimentSpec spec{config.runs,    config.rounds_per_run,
                            config.seed,    config.threads,
                            config.inner_threads, config.shard};
  validate(spec);
  const ResolvedShard shard = resolve_shard(spec);
  LongHorizonPartial partial(
      make_envelope(LongHorizonPayload::kKind,
                    spec_hash_hex(longhorizon_spec_echo(config)), config.agg,
                    config.runs, config.rounds_per_run, shard.begin,
                    shard.end),
      LongHorizonPayload(config.rounds_per_run, config.agg,
                         config.streaming));

  run_and_reduce(
      spec,
      [&](std::size_t run_index, util::Rng&, const RunContext& ctx) {
        return execute_run(config, seed_for_run(config.seed, run_index),
                           ctx.inner_pool);
      },
      [&](std::size_t, LongHorizonRun run) {
        LongHorizonPayload& payload = partial.payload();
        for (std::size_t r = 0; r < config.rounds_per_run; ++r)
          payload.record_round(r, run.gini[r], run.top_share[r], run.corr[r],
                               run.final_pct[r]);
        payload.record_run(run.end_gini, run.end_top_share, run.end_corr,
                           run.paid_algos);
      });
  return partial;
}

LongHorizonResult run_longhorizon(const LongHorizonConfig& config) {
  return run_longhorizon_partial(config).finalize();
}

}  // namespace roleshare::sim
