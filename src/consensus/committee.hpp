// Committee election via cryptographic sortition, for a whole population.
//
// Election is per (round, step): every node evaluates its VRF and wins
// `weight` sub-users with expectation proportional to stake. This module
// runs that computation for all nodes at once — which is exactly what each
// node does locally, since sortition is deterministic and verifiable.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/sortition.hpp"
#include "ledger/types.hpp"

namespace roleshare::consensus {

struct CommitteeMember {
  ledger::NodeId node = 0;
  std::uint64_t weight = 0;  // selected sub-users (vote weight)
  crypto::SortitionResult sortition;
};

struct Committee {
  std::uint64_t round = 0;
  std::uint32_t step = 0;
  std::vector<CommitteeMember> members;

  /// Total selected stake across members.
  std::uint64_t total_weight() const;
  bool contains(ledger::NodeId node) const;
  const CommitteeMember* find(ledger::NodeId node) const;
};

/// Elects the committee for (round, step) given every node's key and stake.
/// `expected_stake` is tau for the step's role; `total_stake` is W.
/// The per-node VRF draws fan out across `exec` (default: serial); members
/// are collected in node order afterwards, so the elected committee is
/// identical for every executor.
Committee elect_committee(const std::vector<crypto::KeyPair>& keys,
                          const std::vector<std::int64_t>& stakes,
                          std::uint64_t round, std::uint32_t step,
                          const crypto::Hash256& prev_seed,
                          std::uint64_t expected_stake,
                          std::int64_t total_stake,
                          const util::InnerExecutor& exec = {});

/// Allocation-free form: election result goes into `committee` (members
/// cleared and refilled, capacity kept) and the per-node VRF draws use
/// `draws_scratch` as working memory. Bit-identical to elect_committee().
void elect_committee_into(const std::vector<crypto::KeyPair>& keys,
                          const std::vector<std::int64_t>& stakes,
                          std::uint64_t round, std::uint32_t step,
                          const crypto::Hash256& prev_seed,
                          std::uint64_t expected_stake,
                          std::int64_t total_stake, Committee& committee,
                          std::vector<crypto::SortitionResult>& draws_scratch,
                          const util::InnerExecutor& exec = {});

}  // namespace roleshare::consensus
