#include "econ/reward_pool.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace roleshare::econ {

FoundationPool::FoundationPool(ledger::MicroAlgos ceiling)
    : ceiling_(ceiling) {
  RS_REQUIRE(ceiling > 0, "pool ceiling must be positive");
}

ledger::MicroAlgos FoundationPool::inject(ledger::MicroAlgos amount) {
  RS_REQUIRE(amount >= 0, "injection must be non-negative");
  const ledger::MicroAlgos room = ceiling_ - emitted_;
  const ledger::MicroAlgos actual = std::min(amount, room);
  emitted_ += actual;
  balance_ += actual;
  return actual;
}

ledger::MicroAlgos FoundationPool::withdraw(ledger::MicroAlgos amount) {
  RS_REQUIRE(amount >= 0, "withdrawal must be non-negative");
  const ledger::MicroAlgos actual = std::min(amount, balance_);
  balance_ -= actual;
  disbursed_ += actual;
  return actual;
}

void TransactionFeePool::deposit(ledger::MicroAlgos fees) {
  RS_REQUIRE(fees >= 0, "fees must be non-negative");
  balance_ += fees;
}

ledger::MicroAlgos TransactionFeePool::withdraw(ledger::MicroAlgos amount) {
  RS_REQUIRE(amount >= 0, "withdrawal must be non-negative");
  const ledger::MicroAlgos actual = std::min(amount, balance_);
  balance_ -= actual;
  return actual;
}

}  // namespace roleshare::econ
