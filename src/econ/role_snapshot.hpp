// Per-round snapshot of who holds which role and which stake — the input
// both reward schemes and the Theorem-3 bounds operate on (the paper's
// L, M, K sets with S_L, S_M, S_K and the per-role minimum stakes).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "consensus/roles.hpp"
#include "ledger/types.hpp"

namespace roleshare::econ {

class RoleSnapshot {
 public:
  /// `roles[v]` and `stakes[v]` (whole Algos) for every online node v.
  RoleSnapshot(std::vector<consensus::Role> roles,
               std::vector<std::int64_t> stakes);

  /// Rebuilds this snapshot in place by *swapping* in the caller's
  /// role/stake vectors and recomputing the cached aggregates. The caller
  /// gets the snapshot's previous vectors back (capacity intact) to refill
  /// next round — the reuse handshake that lets a recycled RoundResult
  /// rebuild its snapshots without heap traffic.
  void reset(std::vector<consensus::Role>& roles,
             std::vector<std::int64_t>& stakes);

  std::size_t node_count() const { return roles_.size(); }
  consensus::Role role(ledger::NodeId v) const { return roles_.at(v); }
  std::int64_t stake(ledger::NodeId v) const { return stakes_.at(v); }
  const std::vector<consensus::Role>& roles() const { return roles_; }
  const std::vector<std::int64_t>& stakes() const { return stakes_; }

  std::size_t count(consensus::Role r) const;

  /// Total stake per role: S_L, S_M, S_K; and S_N = S_L + S_M + S_K.
  std::int64_t stake_of(consensus::Role r) const;
  std::int64_t total_stake() const;

  /// Minimum stake within a role (s*_l, s*_m, s*_k). Returns 0 when the
  /// role is empty.
  std::int64_t min_stake_of(consensus::Role r) const;

  /// Copy with every node of stake < `min_stake` excluded from the Other
  /// set (they keep no role and receive nothing) — the Fig-7(c) filter
  /// U_w(1,200). Leaders/committee are never dropped.
  RoleSnapshot filtered_others(std::int64_t min_stake) const;

 private:
  void recompute_aggregates();

  std::vector<consensus::Role> roles_;
  std::vector<std::int64_t> stakes_;
  // Cached aggregates, computed once at construction (or reset()).
  std::array<std::int64_t, 3> stake_sum_{};
  std::array<std::int64_t, 3> stake_min_{};
  std::array<std::size_t, 3> counts_{};
};

}  // namespace roleshare::econ
