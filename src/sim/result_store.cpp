#include "sim/result_store.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "util/framed_io.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

namespace fs = std::filesystem;
namespace framed = util::framed;

namespace {

constexpr std::uint32_t kStoreMagic = framed::magic4('R', 'S', 'R', 'S');
constexpr std::uint16_t kStoreVersion = 1;
constexpr const char* kEntrySuffix = ".rsr";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Frames key id + payload into one entry file's bytes.
std::string encode_entry(const ResultKey& key, std::string_view payload) {
  framed::Writer w(kStoreMagic, kStoreVersion);
  w.begin_section("key");
  w.put_string(key.id());
  w.end_section();
  w.begin_section("payload");
  w.put_string(payload);
  w.end_section();
  return w.finish();
}

/// Inverts encode_entry; throws framed::Error on any corruption. When
/// `expected_id` is non-empty the stored key id must match it (the
/// file-name digest collision guard).
std::string decode_entry(std::string_view bytes, const std::string& origin,
                         const std::string& expected_id) {
  framed::Reader r(bytes, kStoreMagic, kStoreVersion, origin);
  r.begin_section("key");
  const std::string id = r.get_string();
  r.end_section();
  if (!expected_id.empty() && id != expected_id) {
    throw framed::Error(origin + ": entry holds key \"" + id +
                        "\" but \"" + expected_id +
                        "\" was requested — digest collision or tampered "
                        "entry");
  }
  r.begin_section("payload");
  std::string payload = r.get_string();
  r.end_section();
  r.finish();
  return payload;
}

}  // namespace

std::string ResultKey::id() const {
  RS_REQUIRE(!kind.empty() && !bench.empty() && !spec_hash.empty(),
             "ResultKey needs kind, bench and spec_hash");
  RS_REQUIRE(run_begin < run_end,
             "ResultKey window [" + std::to_string(run_begin) + ", " +
                 std::to_string(run_end) + ") is empty");
  return kind + "/" + bench + "/" + spec_hash + "/" + to_string(backend) +
         "/[" + std::to_string(run_begin) + "," + std::to_string(run_end) +
         ")";
}

std::string ResultKey::entry_name() const {
  return hex16(framed::fnv1a_64(id())) + kEntrySuffix;
}

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {
  RS_REQUIRE(!root_.empty(), "ResultStore needs a directory path");
  std::error_code ec;
  fs::create_directories(root_, ec);
  if (ec || !fs::is_directory(root_)) {
    throw std::runtime_error("result store root " + root_ +
                             " is not a usable directory" +
                             (ec ? ": " + ec.message() : ""));
  }
}

std::string ResultStore::entry_path(const ResultKey& key) const {
  return (fs::path(root_) / key.entry_name()).string();
}

std::optional<std::string> ResultStore::lookup(const ResultKey& key) const {
  const std::string path = entry_path(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;
  try {
    return decode_entry(read_file(path), path, key.id());
  } catch (const std::exception&) {
    // Corrupt, truncated, foreign or unreadable — a recompute, never a
    // failed sweep. gc() reaps such entries.
    return std::nullopt;
  }
}

std::optional<ResultStore::EntryStat> ResultStore::stat(
    const ResultKey& key) const {
  const std::string path = entry_path(key);
  std::error_code ec;
  if (!fs::exists(path, ec) || ec) return std::nullopt;
  try {
    const std::string bytes = read_file(path);
    const std::string payload = decode_entry(bytes, path, key.id());
    return EntryStat{payload.size(), bytes.size()};
  } catch (const std::exception&) {
    return std::nullopt;  // corrupt = miss, exactly like lookup()
  }
}

std::string ResultStore::insert(const ResultKey& key,
                                std::string_view payload) {
  const std::string final_path = entry_path(key);
  // Unique temp name per writer: pid + a process-wide counter. The temp
  // lives in the store directory so the rename stays within one
  // filesystem (atomic on POSIX).
  static std::atomic<std::uint64_t> counter{0};
  const std::string tmp_path =
      final_path + ".tmp." +
      std::to_string(static_cast<unsigned long>(::getpid())) + "." +
      std::to_string(counter.fetch_add(1));

  const std::string bytes = encode_entry(key, payload);
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + tmp_path);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) throw std::runtime_error("short write to " + tmp_path);
  }
  std::error_code ec;
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path);
    throw std::runtime_error("cannot publish store entry " + final_path +
                             ": " + ec.message());
  }
  return final_path;
}

GcStats ResultStore::gc(std::uint64_t max_total_bytes) {
  GcStats stats;
  struct Entry {
    fs::path path;
    std::uint64_t bytes = 0;
    fs::file_time_type mtime;
  };
  std::vector<Entry> valid;

  for (const fs::directory_entry& de : fs::directory_iterator(root_)) {
    const fs::path& path = de.path();
    const std::string name = path.filename().string();
    // Orphaned temp files (a writer died mid-insert) are corrupt debris.
    if (name.find(".tmp.") != std::string::npos) {
      fs::remove(path);
      ++stats.corrupt_removed;
      continue;
    }
    if (name.size() < 5 ||
        name.compare(name.size() - 4, 4, kEntrySuffix) != 0) {
      continue;  // not ours — leave foreign files alone
    }
    bool ok = false;
    try {
      decode_entry(read_file(path), path.string(), "");
      ok = true;
    } catch (const std::exception&) {
      ok = false;
    }
    if (!ok) {
      fs::remove(path);
      ++stats.corrupt_removed;
      continue;
    }
    valid.push_back({path, de.file_size(), de.last_write_time()});
  }

  if (max_total_bytes > 0) {
    std::uint64_t total = 0;
    for (const Entry& e : valid) total += e.bytes;
    // Oldest first; ties broken by path for determinism.
    std::sort(valid.begin(), valid.end(), [](const Entry& a, const Entry& b) {
      return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
    });
    std::size_t keep_from = 0;
    while (total > max_total_bytes && keep_from < valid.size()) {
      total -= valid[keep_from].bytes;
      fs::remove(valid[keep_from].path);
      ++stats.evicted;
      ++keep_from;
    }
    valid.erase(valid.begin(),
                valid.begin() + static_cast<std::ptrdiff_t>(keep_from));
  }

  stats.entries_kept = valid.size();
  for (const Entry& e : valid) stats.bytes_kept += e.bytes;
  return stats;
}

}  // namespace roleshare::sim
