// Incentive loop: the paper's thesis in one run. A network of fully
// rational nodes plays myopic best responses round after round:
//  * under the Foundation's stake-proportional rewards, cooperation
//    unravels (Theorem 2) and consensus collapses with it (Fig 3);
//  * under the role-based scheme with Algorithm-1 rewards, cooperation is
//    self-enforcing (Theorem 3) — at a fraction of the cost.
//
//   $ ./incentive_loop
#include <cstdio>

#include "sim/strategic_loop.hpp"

using namespace roleshare;

namespace {

void run_and_print(const char* title, sim::SchemeChoice scheme) {
  sim::StrategicLoopConfig config;
  config.network.node_count = 150;
  config.network.seed = 99;
  config.rounds = 12;
  config.scheme = scheme;

  const sim::StrategicLoopResult result = sim::run_strategic_loop(config);
  std::printf("\n== %s ==\n", title);
  std::printf("%6s %14s %10s %14s\n", "round", "cooperating%", "final%",
              "reward(Algos)");
  for (const sim::StrategicRoundStats& r : result.rounds) {
    std::printf("%6llu %14.1f %10.1f %14.4f\n",
                static_cast<unsigned long long>(r.round),
                r.cooperation_fraction * 100, r.final_fraction * 100,
                r.bi_algos);
  }
  std::printf("total paid: %.4f Algos | cooperation at horizon: %.0f%%\n",
              result.total_reward_algos, result.final_cooperation * 100);
}

}  // namespace

int main() {
  std::printf("150 rational nodes, stakes U(1,50), myopic best-response\n"
              "updates between rounds; everyone starts cooperative.\n");

  run_and_print("Foundation stake-proportional rewards (Eq 3)",
                sim::SchemeChoice::FoundationStakeProportional);
  run_and_print("Role-based rewards + Algorithm 1 (Eq 5)",
                sim::SchemeChoice::RoleBasedAdaptive);

  std::printf("\nReading: the Foundation pays 20 Algos per round and still\n"
              "loses the network; the role-based mechanism pays orders of\n"
              "magnitude less and keeps every role incentive-compatible.\n");
  return 0;
}
