#include "econ/cost_model.hpp"

#include <gtest/gtest.h>

namespace roleshare::econ {
namespace {

using consensus::Role;

TEST(CostModel, DefaultsMatchPaperSectionVA) {
  // §V-A: c_L = 16, c_M = 12, c_K = 6, c_so = 5 micro-Algos.
  const CostModel costs;
  EXPECT_DOUBLE_EQ(costs.leader_cost(), 16.0);
  EXPECT_DOUBLE_EQ(costs.committee_cost(), 12.0);
  EXPECT_DOUBLE_EQ(costs.other_cost(), 6.0);
  EXPECT_DOUBLE_EQ(costs.defection_cost(), 5.0);
}

TEST(CostModel, FixedCostIsEquationOne) {
  // Eq (1): c_fix = c_ve + c_se + c_so + c_go + c_vs + c_vc.
  TaskCosts t;
  t.cve = 1;
  t.cse = 2;
  t.cso = 3;
  t.cvs = 4;
  t.cgo = 5;
  t.cvc = 6;
  t.cbl = 100;  // leader-only, excluded from c_fix
  t.cbs = 200;
  t.cvo = 300;
  const CostModel costs(t);
  EXPECT_DOUBLE_EQ(costs.fixed_cost(), 21.0);
  EXPECT_DOUBLE_EQ(costs.leader_cost(), 121.0);      // + c_bl
  EXPECT_DOUBLE_EQ(costs.committee_cost(), 521.0);   // + c_bs + c_vo
  EXPECT_DOUBLE_EQ(costs.other_cost(), 21.0);
}

TEST(CostModel, CooperationCostDispatch) {
  const CostModel costs;
  EXPECT_DOUBLE_EQ(costs.cooperation_cost(Role::Leader), costs.leader_cost());
  EXPECT_DOUBLE_EQ(costs.cooperation_cost(Role::Committee),
                   costs.committee_cost());
  EXPECT_DOUBLE_EQ(costs.cooperation_cost(Role::Other), costs.other_cost());
}

TEST(CostModel, RoleCostOrdering) {
  // Cooperation must cost at least defection; leaders/committee pay extra.
  const CostModel costs;
  EXPECT_GT(costs.leader_cost(), costs.other_cost());
  EXPECT_GT(costs.committee_cost(), costs.other_cost());
  EXPECT_GT(costs.other_cost(), costs.defection_cost());
}

TEST(CostModel, FromRoleCosts) {
  const CostModel costs = CostModel::from_role_costs(20, 15, 8, 4);
  EXPECT_DOUBLE_EQ(costs.leader_cost(), 20.0);
  EXPECT_DOUBLE_EQ(costs.committee_cost(), 15.0);
  EXPECT_DOUBLE_EQ(costs.other_cost(), 8.0);
  EXPECT_DOUBLE_EQ(costs.defection_cost(), 4.0);
  EXPECT_DOUBLE_EQ(costs.fixed_cost(), 8.0);
}

TEST(CostModel, FromRoleCostsRejectsInvertedOrdering) {
  EXPECT_THROW(CostModel::from_role_costs(5, 15, 8, 4),
               std::invalid_argument);  // c_L < c_K
  EXPECT_THROW(CostModel::from_role_costs(20, 6, 8, 4),
               std::invalid_argument);  // c_M < c_K
  EXPECT_THROW(CostModel::from_role_costs(20, 15, 3, 4),
               std::invalid_argument);  // c_K < c_so
}

TEST(TaskCosts, ValidateRejectsNegative) {
  TaskCosts t;
  t.cvo = -1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

// Table II: which role performs which task.
TEST(CostModel, TableTwoRoleTaskMatrix) {
  // Fixed-cost tasks are performed by every role.
  for (const auto task :
       {"transaction_verification", "seed_generation", "sortition",
        "verify_sortition_proof", "gossiping", "vote_counting"}) {
    EXPECT_TRUE(CostModel::role_performs(Role::Leader, task)) << task;
    EXPECT_TRUE(CostModel::role_performs(Role::Committee, task)) << task;
    EXPECT_TRUE(CostModel::role_performs(Role::Other, task)) << task;
  }
  // Block proposition: leaders only.
  EXPECT_TRUE(CostModel::role_performs(Role::Leader, "block_proposition"));
  EXPECT_FALSE(
      CostModel::role_performs(Role::Committee, "block_proposition"));
  EXPECT_FALSE(CostModel::role_performs(Role::Other, "block_proposition"));
  // Block selection and voting: committee only.
  for (const auto task : {"block_selection", "vote"}) {
    EXPECT_FALSE(CostModel::role_performs(Role::Leader, task)) << task;
    EXPECT_TRUE(CostModel::role_performs(Role::Committee, task)) << task;
    EXPECT_FALSE(CostModel::role_performs(Role::Other, task)) << task;
  }
}

}  // namespace
}  // namespace roleshare::econ
