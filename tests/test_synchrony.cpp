#include "net/synchrony.hpp"

#include <gtest/gtest.h>

#include "net/delay_model.hpp"

namespace roleshare::net {
namespace {

TEST(Synchrony, StartsStrong) {
  SynchronyController ctrl(SynchronyConfig{});
  EXPECT_EQ(ctrl.state(), SynchronyState::Strong);
  EXPECT_DOUBLE_EQ(ctrl.delay_factor(), 1.0);
}

TEST(Synchrony, ZeroProbabilityStaysStrong) {
  SynchronyController ctrl(SynchronyConfig{0.0, 4.0, 3});
  util::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ctrl.advance_round(rng), SynchronyState::Strong);
  }
}

TEST(Synchrony, CertainDegradationIsBounded) {
  // With degrade probability 1 the controller still returns to Strong
  // within max_degraded_rounds — the weak-synchrony boundedness guarantee.
  SynchronyController ctrl(SynchronyConfig{1.0, 4.0, 3});
  util::Rng rng(2);
  int longest_degraded_run = 0, current = 0;
  for (int i = 0; i < 200; ++i) {
    if (ctrl.advance_round(rng) == SynchronyState::Degraded) {
      ++current;
      longest_degraded_run = std::max(longest_degraded_run, current);
    } else {
      current = 0;
    }
  }
  EXPECT_LE(longest_degraded_run, 3);
  EXPECT_GT(longest_degraded_run, 0);
}

TEST(Synchrony, DelayFactorAppliesWhenDegraded) {
  SynchronyController ctrl(SynchronyConfig{0.0, 5.5, 3});
  ctrl.force(SynchronyState::Degraded);
  EXPECT_DOUBLE_EQ(ctrl.delay_factor(), 5.5);
  ctrl.force(SynchronyState::Strong);
  EXPECT_DOUBLE_EQ(ctrl.delay_factor(), 1.0);
}

TEST(Synchrony, DegradeFrequencyMatchesProbability) {
  SynchronyController ctrl(SynchronyConfig{0.2, 4.0, 1});
  util::Rng rng(3);
  int degraded = 0;
  const int rounds = 20000;
  for (int i = 0; i < rounds; ++i) {
    if (ctrl.advance_round(rng) == SynchronyState::Degraded) ++degraded;
  }
  // With max run 1, state alternates; expected degraded fraction is close
  // to p/(1+p) for small p. Loose bounds suffice here.
  const double frac = static_cast<double>(degraded) / rounds;
  EXPECT_GT(frac, 0.1);
  EXPECT_LT(frac, 0.3);
}

TEST(Synchrony, RejectsBadConfig) {
  EXPECT_THROW(SynchronyController(SynchronyConfig{-0.1, 4.0, 3}),
               std::invalid_argument);
  EXPECT_THROW(SynchronyController(SynchronyConfig{0.5, 0.5, 3}),
               std::invalid_argument);
}

TEST(DelayModels, UniformStaysInRange) {
  util::Rng rng(1);
  const UniformDelay d(20.0, 120.0);
  for (int i = 0; i < 1000; ++i) {
    const TimeMs t = d.sample(rng, 0, 1);
    EXPECT_GE(t, 20.0);
    EXPECT_LT(t, 120.0);
  }
}

TEST(DelayModels, UniformDegenerateRange) {
  util::Rng rng(1);
  const UniformDelay d(50.0, 50.0);
  EXPECT_DOUBLE_EQ(d.sample(rng, 0, 1), 50.0);
}

TEST(DelayModels, ExponentialMean) {
  util::Rng rng(2);
  const ExponentialDelay d(10.0, 40.0);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += d.sample(rng, 0, 1);
  EXPECT_NEAR(sum / n, 50.0, 1.5);
}

TEST(DelayModels, ConstantIsConstant) {
  util::Rng rng(3);
  const ConstantDelay d(7.0);
  EXPECT_DOUBLE_EQ(d.sample(rng, 0, 1), 7.0);
  EXPECT_DOUBLE_EQ(d.sample(rng, 5, 9), 7.0);
}

TEST(DelayModels, FactoriesAndNames) {
  EXPECT_NE(make_uniform_delay(1, 2)->name().find("UniformDelay"),
            std::string::npos);
  EXPECT_NE(make_exponential_delay(1, 2)->name().find("ExpDelay"),
            std::string::npos);
  EXPECT_NE(make_constant_delay(1)->name().find("ConstDelay"),
            std::string::npos);
}

TEST(DelayModels, RejectBadParameters) {
  EXPECT_THROW(UniformDelay(-1.0, 5.0), std::invalid_argument);
  EXPECT_THROW(UniformDelay(5.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ExponentialDelay(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ConstantDelay(-2.0), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::net
