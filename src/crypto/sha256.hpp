// SHA-256 implemented from scratch (FIPS 180-4). This is the only hash
// primitive in RoleShare: block hashing, simulated signatures, the VRF and
// sortition all build on it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

namespace roleshare::crypto {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context. Usage: update(...) any number of times,
/// then finalize() exactly once.
class Sha256 {
 public:
  Sha256();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view text);
  /// Appends an integer in little-endian byte order (domain-separation aid).
  void update_u64(std::uint64_t value);

  /// Completes the hash. The context must not be reused afterwards.
  Digest finalize();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_bytes_ = 0;
  bool finalized_ = false;
};

/// One-shot helpers.
Digest sha256(std::span<const std::uint8_t> data);
Digest sha256(std::string_view text);

/// Raw SHA-256 compression: folds one 64-byte block into `state`. The
/// streaming Sha256 context and the fixed-layout fast path below share
/// this single implementation, so their digests cannot diverge.
void sha256_compress(std::array<std::uint32_t, 8>& state,
                     const std::uint8_t* block);

/// The SHA-256 initialization vector (FIPS 180-4 §5.3.3).
std::array<std::uint32_t, 8> sha256_initial_state();

/// Fixed-layout SHA-256 for hot loops that hash many messages of one
/// shape (sortition signatures, VRF outputs, vote coin hashes): the
/// message occupies a flat buffer whose padding is laid out once at
/// seal() time, so per-message work is exactly the 1–2 compression
/// calls — no streaming buffer management, no per-call padding.
///
/// Usage: write the constant bytes, seal(), then per message overwrite
/// the variable bytes through data() and call digest(). Copying a sealed
/// Sha256Fixed is cheap (160 bytes) — parallel chunk workers each take a
/// private copy of the shared template. Messages are limited to 119
/// bytes (two blocks minus the 9 mandatory padding bytes).
class Sha256Fixed {
 public:
  /// Lays out a message of exactly `message_len` bytes (<= 119).
  explicit Sha256Fixed(std::size_t message_len);

  /// The message bytes; valid offsets are [0, message_len()).
  std::uint8_t* data() { return block_.data(); }
  std::size_t message_len() const { return len_; }

  /// Overwrites `count` message bytes at `offset` (bounds-checked).
  void write(std::size_t offset, const std::uint8_t* bytes,
             std::size_t count);

  /// Hashes the current buffer contents. Bit-identical to streaming the
  /// same message through Sha256.
  Digest digest() const;

 private:
  std::array<std::uint8_t, 128> block_{};
  std::size_t len_ = 0;
  std::size_t blocks_ = 1;
};

}  // namespace roleshare::crypto
