#include "util/stake_index.hpp"

#include "util/require.hpp"

namespace roleshare::util {

StakeIndex::StakeIndex(std::span<const std::int64_t> stakes) {
  rebuild(stakes);
}

void StakeIndex::rebuild(std::span<const std::int64_t> stakes) {
  const std::size_t n = stakes.size();
  stake_.assign(stakes.begin(), stakes.end());
  tree_.assign(n + 1, 0);
  total_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    RS_REQUIRE(stakes[i] >= 0, "stake index: negative stake");
    total_ += stakes[i];
  }
  // O(n) bottom-up build: seed the leaves, then push each node's sum into
  // its Fenwick parent.
  for (std::size_t i = 1; i <= n; ++i) tree_[i] = stakes[i - 1];
  for (std::size_t i = 1; i <= n; ++i) {
    const std::size_t parent = i + (i & (~i + 1));
    if (parent <= n) tree_[parent] += tree_[i];
  }
  descent_mask_ = 1;
  while (descent_mask_ * 2 <= n) descent_mask_ *= 2;
  if (n == 0) descent_mask_ = 0;
}

void StakeIndex::update(std::size_t v, std::int64_t new_stake) {
  RS_REQUIRE(v < stake_.size(), "stake index: node out of range");
  RS_REQUIRE(new_stake >= 0, "stake index: negative stake");
  const std::int64_t delta = new_stake - stake_[v];
  if (delta == 0) return;
  stake_[v] = new_stake;
  total_ += delta;
  for (std::size_t i = v + 1; i < tree_.size(); i += i & (~i + 1))
    tree_[i] += delta;
}

std::int64_t StakeIndex::prefix_sum(std::size_t v) const {
  RS_REQUIRE(v <= stake_.size(), "stake index: prefix out of range");
  std::int64_t sum = 0;
  for (std::size_t i = v; i > 0; i -= i & (~i + 1)) sum += tree_[i];
  return sum;
}

std::size_t StakeIndex::find(std::int64_t target) const {
  RS_REQUIRE(target >= 0 && target < total_,
             "stake index: offset outside [0, total)");
  const std::size_t n = stake_.size();
  std::size_t pos = 0;
  for (std::size_t k = descent_mask_; k > 0; k >>= 1) {
    const std::size_t next = pos + k;
    if (next <= n && tree_[next] <= target) {
      pos = next;
      target -= tree_[next];
    }
  }
  return pos;  // 0-based: the first leaf whose cumulative range covers target
}

std::size_t StakeIndex::sample(Rng& rng) const {
  RS_REQUIRE(total_ > 0, "stake index: sampling from zero total stake");
  return find(rng.uniform_int(0, total_ - 1));
}

}  // namespace roleshare::util
