#include "consensus/proposal.hpp"

#include "util/require.hpp"

namespace roleshare::consensus {

BlockProposal make_proposal(ledger::NodeId proposer,
                            const crypto::PublicKey& key,
                            ledger::Block block,
                            const crypto::SortitionResult& sortition) {
  RS_REQUIRE(sortition.selected(), "proposer must have won sortition");
  BlockProposal p;
  p.proposer = proposer;
  p.proposer_key = key;
  p.block = std::move(block);
  p.sortition = sortition;
  p.priority = sortition.priority();
  return p;
}

bool verify_proposal(const BlockProposal& proposal,
                     const crypto::VrfInput& input, std::int64_t stake,
                     const crypto::SortitionParams& params) {
  const std::uint64_t sub_users = crypto::verify_sortition(
      proposal.proposer_key, input, proposal.sortition.vrf, stake, params);
  if (sub_users == 0 || sub_users != proposal.sortition.sub_users)
    return false;
  return proposal.priority == proposal.sortition.priority();
}

std::optional<BlockProposal> select_best_proposal(
    std::span<const BlockProposal> received) {
  const BlockProposal* best = nullptr;
  crypto::Hash256 best_hash;
  for (const BlockProposal& p : received) {
    const crypto::Hash256 h = p.block_hash();
    if (best == nullptr || p.priority > best->priority ||
        (p.priority == best->priority && h < best_hash)) {
      best = &p;
      best_hash = h;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace roleshare::consensus
