// Adaptive rewards: Algorithm 1 reacting to a shifting stake distribution.
// The Foundation can track the network state and pay exactly as much as
// incentive compatibility requires — more when small-stake nodes flood in,
// less when they leave or are filtered out (the paper's closing argument).
//
//   $ ./adaptive_rewards [--runs=3] [--threads=1]
//
// Each scenario is a Monte-Carlo experiment over independently sampled
// populations on the shared ExperimentRunner engine (run k draws from
// root.split(k)); the reported B_i is the mean across runs.
#include <cstdio>

#include "bench_util.hpp"
#include "econ/optimizer.hpp"
#include "sim/experiment_runner.hpp"
#include "util/distributions.hpp"

using namespace roleshare;

namespace {

// Builds Theorem-3 bound inputs for a population sampled from `dist`,
// with the paper's committee-stake accounting (S_L=26, S_M=13k).
econ::BoundInputs inputs_for(const util::StakeDistribution& dist,
                             std::size_t nodes, std::int64_t min_other,
                             util::Rng& rng) {
  econ::BoundInputs in;
  in.stake_leaders = 26;
  in.stake_committee = 13'000;
  in.min_stake_leader = 1;
  in.min_stake_committee = 1;
  double total = 0;
  std::int64_t min_stake = 0;
  for (std::size_t v = 0; v < nodes; ++v) {
    const std::int64_t s = dist.sample(rng);
    if (s < min_other) continue;  // filtered out of the reward set
    total += static_cast<double>(s);
    if (min_stake == 0 || s < min_stake) min_stake = s;
  }
  in.stake_others = total - in.stake_leaders - in.stake_committee;
  in.min_stake_other = static_cast<double>(min_stake > 0 ? min_stake : 1);
  return in;
}

struct ScenarioOutcome {
  double bi_algos = 0;
  double alpha = 0;
  double beta = 0;
  bool feasible = false;
};

void report(const char* scenario, const util::StakeDistribution& dist,
            std::int64_t min_other, std::size_t nodes, std::size_t runs,
            std::size_t threads, std::uint64_t root_seed) {
  const econ::RewardOptimizer optimizer;
  const econ::CostModel costs;

  double bi = 0, alpha = 0, beta = 0;
  std::size_t feasible_runs = 0;
  sim::run_and_reduce(
      sim::ExperimentSpec{runs, 1, root_seed, threads},
      [&](std::size_t, util::Rng& rng) {
        const econ::OptimizerResult r =
            optimizer.optimize(inputs_for(dist, nodes, min_other, rng), costs);
        ScenarioOutcome outcome;
        outcome.feasible = r.feasible;
        if (r.feasible) {
          outcome.bi_algos = r.min_bi / 1e6;
          outcome.alpha = r.split.alpha;
          outcome.beta = r.split.beta;
        }
        return outcome;
      },
      [&](std::size_t, ScenarioOutcome outcome) {
        if (!outcome.feasible) return;
        ++feasible_runs;
        bi += outcome.bi_algos;
        alpha += outcome.alpha;
        beta += outcome.beta;
      });

  if (feasible_runs == 0) {
    std::printf("%-46s infeasible\n", scenario);
    return;
  }
  const double n = static_cast<double>(feasible_runs);
  std::printf("%-46s B_i = %8.2f Algos  (a=%.4f b=%.4f g=%.3f)", scenario,
              bi / n, alpha / n, beta / n, 1.0 - alpha / n - beta / n);
  if (feasible_runs < runs)
    std::printf("  [%zu/%zu runs feasible]", feasible_runs, runs);
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto runs =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "runs", 3));
  const std::size_t threads = bench::arg_threads(argc, argv);
  const std::size_t nodes = 100'000;

  std::printf("Algorithm 1 on a %zu-node economy (Foundation per-round "
              "schedule pays 20 Algos in period 1); %zu sampled populations "
              "per scenario (threads=%zu):\n\n",
              nodes, runs, threads);

  // Scenario 1: launch phase, healthy mid-size stakes.
  report("launch: stakes N(100,10)", util::NormalStake(100, 10), 0, nodes,
         runs, threads, 31);

  // Scenario 2: an influx of dust accounts drags s*_k to 1.
  report("dust influx: stakes U(1,200)", util::UniformStake(1, 200), 0,
         nodes, runs, threads, 32);

  // Scenario 3: the designer filters stakes < 7 from the reward set
  // (Fig 7-c's U_7 lever) instead of paying for the dust.
  report("dust influx + reward floor w=7", util::UniformStake(1, 200), 7,
         nodes, runs, threads, 33);

  // Scenario 4: mature network, stakes concentrate (paper: N(2000,25),
  // >1B Algos in circulation).
  report("mature: stakes N(2000,25)", util::NormalStake(2000, 25), 0, nodes,
         runs, threads, 34);

  std::printf("\nReading: the required reward tracks S_K / s*_k. The\n"
              "Foundation can adapt per round instead of paying the flat\n"
              "Table-III schedule, saving Algos for future use.\n");
  return 0;
}
