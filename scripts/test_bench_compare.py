#!/usr/bin/env python3
"""Unit tests for scripts/bench_compare.py, driven by fixture JSON.

Each case writes a (baseline, current) BENCH-file pair into a temp dir,
runs bench_compare.py as a subprocess (the same way CI invokes it) and
asserts on the exit code and the printed notes/warnings/regressions.

Run directly (python3 scripts/test_bench_compare.py) or via unittest
discovery; CI runs it on every push next to the markdown checks.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def run_compare(baseline, current, extra_args=()):
    """Writes the two fixture dicts, runs bench_compare.py, returns
    (exit_code, stdout+stderr)."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        curr_path = os.path.join(tmp, "current.json")
        with open(base_path, "w", encoding="utf-8") as f:
            json.dump(baseline, f)
        with open(curr_path, "w", encoding="utf-8") as f:
            json.dump(current, f)
        proc = subprocess.run(
            [sys.executable, SCRIPT, base_path, curr_path, *extra_args],
            capture_output=True,
            text=True,
        )
        return proc.returncode, proc.stdout + proc.stderr


class BenchCompareTest(unittest.TestCase):
    def test_identical_files_pass(self):
        doc = {"bench": "round_latency", "wall_ms": 100.0}
        code, out = run_compare(doc, doc)
        self.assertEqual(code, 0, out)
        self.assertIn("OK", out)

    def test_new_metric_without_baseline_notes_and_exits_zero(self):
        # The sparse-ladder scenario: the current BENCH file grew keys
        # (including wall-time-shaped ones) the committed baseline
        # predates. Each must be noted per key; the gate still passes.
        baseline = {"bench": "round_latency", "wall_ms": 100.0}
        current = {
            "bench": "round_latency",
            "wall_ms": 101.0,
            "sparse_1000000_wall_ms": 0.6,
            "sparse_1000000_touched_mean": 2100.0,
        }
        code, out = run_compare(baseline, current)
        self.assertEqual(code, 0, out)
        self.assertIn("new metric, no baseline: 'sparse_1000000_wall_ms'",
                      out)
        self.assertIn(
            "new metric, no baseline: 'sparse_1000000_touched_mean'", out)
        # The pre-existing field still compared normally.
        self.assertIn("wall_ms", out)

    def test_wall_time_regression_fails(self):
        baseline = {"bench": "round_latency", "wall_ms": 100.0}
        current = {"bench": "round_latency", "wall_ms": 150.0}
        code, out = run_compare(baseline, current)
        self.assertEqual(code, 1, out)
        self.assertIn("REGRESSION", out)

    def test_new_metric_note_does_not_mask_regression(self):
        baseline = {"bench": "round_latency", "wall_ms": 100.0}
        current = {"bench": "round_latency", "wall_ms": 150.0,
                   "brand_new_wall_ms": 5.0}
        code, out = run_compare(baseline, current)
        self.assertEqual(code, 1, out)
        self.assertIn("new metric, no baseline: 'brand_new_wall_ms'", out)
        self.assertIn("REGRESSION", out)

    def test_field_missing_from_current_warns_but_passes(self):
        baseline = {"bench": "round_latency", "wall_ms": 100.0,
                    "old_wall_ms": 3.0}
        current = {"bench": "round_latency", "wall_ms": 100.0}
        code, out = run_compare(baseline, current)
        self.assertEqual(code, 0, out)
        self.assertIn("missing from current", out)

    def test_threshold_flag_respected(self):
        baseline = {"bench": "round_latency", "wall_ms": 100.0}
        current = {"bench": "round_latency", "wall_ms": 104.0}
        code, out = run_compare(baseline, current, ["--threshold=0.02"])
        self.assertEqual(code, 1, out)
        code, out = run_compare(baseline, current, ["--threshold=0.10"])
        self.assertEqual(code, 0, out)

    def test_bit_identical_flip_fails(self):
        baseline = {"bench": "round_latency", "bit_identical": "yes"}
        current = {"bench": "round_latency", "bit_identical": "no"}
        code, out = run_compare(baseline, current)
        self.assertEqual(code, 1, out)
        self.assertIn("determinism gate broken", out)

    def test_partial_format_flip_warns_not_fails(self):
        baseline = {"bench": "fig6_shard", "partial_format": "json",
                    "partial_bytes": 1000.0}
        current = {"bench": "fig6_shard", "partial_format": "bin",
                   "partial_bytes": 400.0}
        code, out = run_compare(baseline, current)
        self.assertEqual(code, 0, out)
        self.assertIn("partial_format changed", out)


if __name__ == "__main__":
    unittest.main()
