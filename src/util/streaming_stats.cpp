#include "util/streaming_stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"
#include "util/stats.hpp"

namespace roleshare::util {

P2Quantile::P2Quantile(double q) : q_(q) {
  RS_REQUIRE(q > 0.0 && q < 1.0, "P2 quantile in (0, 1)");
  desired_ = {1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0};
  increments_ = {0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0};
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i)
        positions_[i] = static_cast<double>(i + 1);
    }
    return;
  }

  // Locate the cell containing x and clamp the extreme markers.
  std::size_t k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (std::size_t i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += increments_[i];
  ++count_;

  // Nudge the three interior markers toward their desired positions with
  // the piecewise-parabolic (fallback linear) update.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double step_up = positions_[i + 1] - positions_[i];
    const double step_dn = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && step_up > 1.0) || (d <= -1.0 && step_dn < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Parabolic prediction of the marker height at positions_[i] + s.
      const double np = positions_[i];
      const double parabolic =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((np - positions_[i - 1] + s) * (heights_[i + 1] - heights_[i]) /
                   step_up +
               (positions_[i + 1] - np - s) * (heights_[i] - heights_[i - 1]) /
                   (np - positions_[i - 1]));
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        // Linear fallback keeps markers ordered when the parabola escapes.
        const std::size_t j = d >= 1.0 ? i + 1 : i - 1;
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::estimate() const {
  RS_REQUIRE(count_ > 0, "P2 estimate needs at least one sample");
  if (count_ < 5) {
    std::vector<double> xs(heights_.begin(),
                           heights_.begin() + static_cast<long>(count_));
    return percentile(std::move(xs), q_ * 100.0);
  }
  return heights_[2];
}

P2Quantile::State P2Quantile::state() const {
  State s;
  s.q = q_;
  s.count = count_;
  s.heights = heights_;
  s.positions = positions_;
  s.desired = desired_;
  return s;
}

P2Quantile P2Quantile::from_state(const State& s) {
  P2Quantile p(s.q);
  p.count_ = s.count;
  p.heights_ = s.heights;
  p.positions_ = s.positions;
  p.desired_ = s.desired;
  return p;
}

ReservoirSample::ReservoirSample(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), seed_(seed), rng_(seed) {
  RS_REQUIRE(capacity >= 1, "reservoir capacity >= 1");
  samples_.reserve(capacity);
}

std::uint64_t ReservoirSample::next_raw() {
  ++draws_;
  return rng_();
}

void ReservoirSample::add(double x) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(x);
    return;
  }
  // One raw draw per decision; the modulo bias (~seen/2^64) is far below
  // the sketch's sampling error and buys exact state replay.
  const std::uint64_t j = next_raw() % seen_;
  if (j < capacity_) samples_[j] = x;
}

void ReservoirSample::merge(const ReservoirSample& other) {
  RS_REQUIRE(other.capacity_ == capacity_,
             "merging reservoirs of capacities " + std::to_string(capacity_) +
                 " vs " + std::to_string(other.capacity_));
  if (other.seen_ == 0) return;
  if (seen_ == 0) {
    seen_ = other.seen_;
    samples_ = other.samples_;
    return;
  }
  if (seen_ + other.seen_ <= capacity_) {
    // Union still fits: plain concatenation, still exact.
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    seen_ += other.seen_;
    return;
  }
  // Weighted draw without replacement from the two retained pools: each
  // output slot picks a pool with probability proportional to how much of
  // its stream remains unclaimed, which approximates a uniform sample of
  // the concatenated streams (exact weighting, sequential draws).
  double left_weight = static_cast<double>(seen_);
  double right_weight = static_cast<double>(other.seen_);
  std::size_t li = 0, ri = 0;
  std::vector<double> merged;
  merged.reserve(capacity_);
  while (merged.size() < capacity_ &&
         (li < samples_.size() || ri < other.samples_.size())) {
    const bool left_available = li < samples_.size();
    const bool right_available = ri < other.samples_.size();
    bool take_left = left_available;
    if (left_available && right_available) {
      const double p = left_weight / (left_weight + right_weight);
      const double u =
          static_cast<double>(next_raw() >> 11) * 0x1.0p-53;  // [0, 1)
      take_left = u < p;
    }
    if (take_left) {
      merged.push_back(samples_[li++]);
      left_weight = std::max(0.0, left_weight - 1.0);
    } else {
      merged.push_back(other.samples_[ri++]);
      right_weight = std::max(0.0, right_weight - 1.0);
    }
  }
  samples_ = std::move(merged);
  seen_ += other.seen_;
}

ReservoirSample ReservoirSample::from_state(std::size_t capacity,
                                            std::uint64_t seed,
                                            std::uint64_t seen,
                                            std::uint64_t draws,
                                            std::vector<double> samples) {
  ReservoirSample r(capacity, seed);
  RS_REQUIRE(samples.size() <= capacity,
             "reservoir state larger than its capacity");
  RS_REQUIRE(seen >= samples.size(),
             "reservoir seen count below retained sample count");
  r.seen_ = seen;
  r.samples_ = std::move(samples);
  // Fast-forward the private stream to where `draws` decisions left it —
  // one raw output each, for adds and merges alike — so a deserialized
  // reservoir continues exactly like the original, whatever its history.
  for (std::uint64_t i = 0; i < draws; ++i) (void)r.next_raw();
  r.draws_ = draws;
  return r;
}

// ---------------------------------------------------------------------
// StakeConcentration

StakeConcentration::StakeConcentration()
    : counts_(kBuckets, 0), sums_(kBuckets, 0) {}

std::size_t StakeConcentration::bucket_of(std::int64_t stake) {
  RS_REQUIRE(stake >= 0, "stake concentration: negative stake");
  if (stake == 0) return 0;
  // Octave = floor(log2 stake); 8 linear sub-buckets per octave.
  const auto u = static_cast<std::uint64_t>(stake);
  int octave = 63;
  while (((u >> octave) & 1u) == 0) --octave;
  const std::uint64_t base = std::uint64_t{1} << octave;
  const std::uint64_t sub =
      octave >= 3 ? (u - base) >> (octave - 3) : ((u - base) << (3 - octave));
  return 1 + static_cast<std::size_t>(octave) * 8 +
         static_cast<std::size_t>(sub);
}

void StakeConcentration::add(std::int64_t stake) {
  const std::size_t b = bucket_of(stake);
  ++counts_[b];
  sums_[b] += stake;
  ++count_;
  total_ += stake;
}

void StakeConcentration::remove(std::int64_t stake) {
  const std::size_t b = bucket_of(stake);
  RS_REQUIRE(counts_[b] > 0, "stake concentration: removing from an empty bucket");
  --counts_[b];
  sums_[b] -= stake;
  --count_;
  total_ -= stake;
}

void StakeConcentration::update(std::int64_t old_stake,
                                std::int64_t new_stake) {
  if (old_stake == new_stake) return;
  remove(old_stake);
  add(new_stake);
}

double StakeConcentration::gini() const {
  if (count_ == 0 || total_ <= 0) return 0.0;
  // Gini over the quantized (grouped) distribution: groups ascend with the
  // bucket index, every member of group i counts as the group mean mu_i.
  // With ranks 1..n over the sorted stakes,
  //   G = 2 * sum_j(j * x_j) / (n * T) - (n + 1) / n,
  // and a group of n_i equal values starting after c_i others contributes
  // mu_i * (n_i * c_i + n_i * (n_i + 1) / 2) to the rank-weighted sum.
  const double n = static_cast<double>(count_);
  const double t = static_cast<double>(total_);
  double rank_weighted = 0.0;
  double before = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (counts_[b] == 0) continue;
    const double ni = static_cast<double>(counts_[b]);
    const double mu = static_cast<double>(sums_[b]) / ni;
    rank_weighted += mu * (ni * before + ni * (ni + 1.0) / 2.0);
    before += ni;
  }
  return 2.0 * rank_weighted / (n * t) - (n + 1.0) / n;
}

double StakeConcentration::top_share(double fraction) const {
  RS_REQUIRE(fraction > 0.0 && fraction <= 1.0,
             "stake concentration: fraction outside (0, 1]");
  if (count_ == 0 || total_ <= 0) return 0.0;
  auto want = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(count_)));
  if (want == 0) want = 1;
  double held = 0.0;
  for (std::size_t b = kBuckets; b-- > 0 && want > 0;) {
    if (counts_[b] == 0) continue;
    if (counts_[b] <= want) {
      held += static_cast<double>(sums_[b]);
      want -= counts_[b];
    } else {
      // Boundary bucket: take the needed holders at the bucket mean.
      held += static_cast<double>(want) * static_cast<double>(sums_[b]) /
              static_cast<double>(counts_[b]);
      want = 0;
    }
  }
  return held / static_cast<double>(total_);
}

// ---------------------------------------------------------------------
// CohortWealthCorrelation

void CohortWealthCorrelation::add(std::int64_t stake, bool in_cohort) {
  const double x = static_cast<double>(stake);
  ++count_[in_cohort ? 1 : 0];
  sum_[in_cohort ? 1 : 0] += x;
  sum_sq_ += x * x;
}

void CohortWealthCorrelation::remove(std::int64_t stake, bool in_cohort) {
  RS_REQUIRE(count_[in_cohort ? 1 : 0] > 0,
             "cohort correlation: removing from an empty cohort");
  const double x = static_cast<double>(stake);
  --count_[in_cohort ? 1 : 0];
  sum_[in_cohort ? 1 : 0] -= x;
  sum_sq_ -= x * x;
}

void CohortWealthCorrelation::update(std::int64_t old_stake,
                                     std::int64_t new_stake,
                                     bool in_cohort) {
  if (old_stake == new_stake) return;
  remove(old_stake, in_cohort);
  add(new_stake, in_cohort);
}

double CohortWealthCorrelation::correlation() const {
  const std::size_t n0 = count_[0], n1 = count_[1];
  if (n0 == 0 || n1 == 0) return 0.0;
  const double n = static_cast<double>(n0 + n1);
  const double mean0 = sum_[0] / static_cast<double>(n0);
  const double mean1 = sum_[1] / static_cast<double>(n1);
  const double mean = (sum_[0] + sum_[1]) / n;
  const double var = sum_sq_ / n - mean * mean;
  if (var <= 0.0) return 0.0;
  const double p = static_cast<double>(n1) / n;
  return (mean1 - mean0) * std::sqrt(p * (1.0 - p)) / std::sqrt(var);
}

}  // namespace roleshare::util
