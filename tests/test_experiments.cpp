#include <gtest/gtest.h>

#include "sim/defection_experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/reward_experiment.hpp"

namespace roleshare::sim {
namespace {

TEST(OutcomeMetrics, AggregatesTrimmedMeans) {
  OutcomeMetrics metrics(2);
  RoundResult r;
  r.final_fraction = 1.0;
  r.tentative_fraction = 0.0;
  r.none_fraction = 0.0;
  metrics.record(0, r);
  r.final_fraction = 0.5;
  r.tentative_fraction = 0.25;
  r.none_fraction = 0.25;
  metrics.record(0, r);
  EXPECT_EQ(metrics.runs_recorded(0), 2u);
  EXPECT_EQ(metrics.runs_recorded(1), 0u);
  const auto agg = metrics.aggregate(0.0);
  EXPECT_NEAR(agg[0].final_pct, 75.0, 1e-9);
  EXPECT_NEAR(agg[0].tentative_pct, 12.5, 1e-9);
}

TEST(OutcomeMetrics, BoundsChecked) {
  OutcomeMetrics metrics(2);
  RoundResult r;
  EXPECT_THROW(metrics.record(5, r), std::invalid_argument);
  EXPECT_THROW(OutcomeMetrics(0), std::invalid_argument);
}

TEST(DefectionExperiment, ZeroDefectionStaysHealthy) {
  DefectionExperimentConfig config;
  config.network.node_count = 80;
  config.network.seed = 5;
  config.network.defection_rate = 0.0;
  config.runs = 6;
  config.rounds = 4;
  const DefectionSeries series = run_defection_experiment(config);
  ASSERT_EQ(series.rounds.size(), 4u);
  // Individual rounds can fail by honest bad luck (e.g. sortition elects
  // no proposer, ~e^-4), so assert on the across-round average.
  double mean_final = 0, mean_none = 0;
  for (const RoundAggregate& agg : series.rounds) {
    mean_final += agg.final_pct;
    mean_none += agg.none_pct;
  }
  EXPECT_GT(mean_final / 4, 80.0);
  EXPECT_LT(mean_none / 4, 15.0);
  EXPECT_DOUBLE_EQ(series.runs_with_progress, 1.0);
}

TEST(DefectionExperiment, HighDefectionCollapses) {
  DefectionExperimentConfig config;
  config.network.node_count = 80;
  config.network.seed = 6;
  config.network.defection_rate = 0.5;
  config.runs = 3;
  config.rounds = 4;
  const DefectionSeries series = run_defection_experiment(config);
  double mean_final = 0;
  for (const RoundAggregate& agg : series.rounds) mean_final += agg.final_pct;
  mean_final /= 4;
  EXPECT_LT(mean_final, 50.0);
}

TEST(DefectionExperiment, MonotoneInDefectionRate) {
  auto run_at = [](double rate) {
    DefectionExperimentConfig config;
    config.network.node_count = 80;
    config.network.seed = 7;
    config.network.defection_rate = rate;
    config.runs = 3;
    config.rounds = 3;
    const DefectionSeries series = run_defection_experiment(config);
    double mean_final = 0;
    for (const RoundAggregate& agg : series.rounds)
      mean_final += agg.final_pct;
    return mean_final / 3;
  };
  const double low = run_at(0.0);
  const double high = run_at(0.45);
  EXPECT_GT(low, high);
}

TEST(DefectionExperiment, RejectsEmptyConfig) {
  DefectionExperimentConfig config;
  config.runs = 0;
  EXPECT_THROW(run_defection_experiment(config), std::invalid_argument);
}

TEST(StakeSpec, FactoriesAndNames) {
  EXPECT_EQ(StakeSpec::uniform(1, 200).name(), "U(1,200)");
  EXPECT_EQ(StakeSpec::normal(100, 20).name(), "N(100,20)");
}

TEST(RewardExperiment, ComputesPositiveFeasibleRewards) {
  RewardExperimentConfig config;
  config.node_count = 5'000;
  config.runs = 3;
  config.rounds_per_run = 3;
  config.stakes = StakeSpec::uniform(1, 200);
  const RewardExperimentResult result = run_reward_experiment(config);
  EXPECT_EQ(result.infeasible_rounds, 0u);
  EXPECT_EQ(result.bi_algos.size(), 9u);
  EXPECT_GT(result.mean_bi, 0.0);
  for (const double bi : result.bi_algos) EXPECT_GT(bi, 0.0);
}

TEST(RewardExperiment, FoundationBaselineIsTwentyAlgosInPeriodOne) {
  RewardExperimentConfig config;
  config.node_count = 2'000;
  config.runs = 1;
  config.rounds_per_run = 3;
  const RewardExperimentResult result = run_reward_experiment(config);
  for (const double f : result.foundation_per_round)
    EXPECT_DOUBLE_EQ(f, 20.0);
}

TEST(RewardExperiment, RewardScalesWithPopulationStake) {
  // Doubling the population (hence S_K) roughly doubles required B_i —
  // the online-node bound dominates.
  RewardExperimentConfig small;
  small.node_count = 3'000;
  small.runs = 2;
  small.rounds_per_run = 2;
  RewardExperimentConfig big = small;
  big.node_count = 6'000;
  const double bi_small = run_reward_experiment(small).mean_bi;
  const double bi_big = run_reward_experiment(big).mean_bi;
  EXPECT_GT(bi_big, bi_small * 1.5);
  EXPECT_LT(bi_big, bi_small * 2.5);
}

TEST(RewardExperiment, MinStakeFilterReducesReward) {
  // Fig-7(c): excluding small stakes from the reward set cuts B_i.
  RewardExperimentConfig base;
  base.node_count = 4'000;
  base.runs = 2;
  base.rounds_per_run = 2;
  base.stakes = StakeSpec::uniform(1, 200);
  RewardExperimentConfig filtered = base;
  filtered.min_other_stake = 7;
  const double bi_base = run_reward_experiment(base).mean_bi;
  const double bi_filtered = run_reward_experiment(filtered).mean_bi;
  EXPECT_LT(bi_filtered, bi_base);
}

TEST(RewardExperiment, NarrowDistributionNeedsSmallerReward) {
  // N(100,10) has a much larger minimum stake than U(1,200), so its
  // required reward is far smaller — the Fig-6 ordering.
  RewardExperimentConfig uniform;
  uniform.node_count = 4'000;
  uniform.runs = 2;
  uniform.rounds_per_run = 2;
  uniform.stakes = StakeSpec::uniform(1, 200);
  RewardExperimentConfig normal = uniform;
  normal.stakes = StakeSpec::normal(100, 10);
  const double bi_uniform = run_reward_experiment(uniform).mean_bi;
  const double bi_normal = run_reward_experiment(normal).mean_bi;
  EXPECT_LT(bi_normal, bi_uniform * 0.5);
}

TEST(RewardExperiment, OptimizerKeepsLeaderShareTiny) {
  // Fig-5 shape: alpha stays tiny (S_L = 26 is minute), and a healthy
  // share is left for the online nodes. At small simulated populations the
  // committee share beta legitimately grows (S_M = 13k is then a large
  // fraction of S_N), so only loose bounds apply to it.
  RewardExperimentConfig config;
  config.node_count = 3'000;
  config.runs = 2;
  config.rounds_per_run = 2;
  const RewardExperimentResult result = run_reward_experiment(config);
  EXPECT_LT(result.mean_alpha, 0.1);
  // At 3k nodes S_M = 13k is a large share of S_N, so beta legitimately
  // dominates; gamma still stays positive.
  EXPECT_GT(1.0 - result.mean_alpha - result.mean_beta, 0.01);  // gamma
}

TEST(RewardExperiment, PaperScalePopulationYieldsSmallAlphaBeta) {
  // At a population closer to the paper's (S_K >> S_M) both alpha and
  // beta shrink, matching the (0.02, 0.03) regime of §V-A.
  RewardExperimentConfig config;
  config.node_count = 50'000;
  config.runs = 1;
  config.rounds_per_run = 2;
  const RewardExperimentResult result = run_reward_experiment(config);
  EXPECT_LT(result.mean_alpha, 0.05);
  EXPECT_LT(result.mean_beta, 0.25);
}

TEST(RewardExperiment, RejectsBadConfig) {
  RewardExperimentConfig config;
  config.node_count = 1;
  EXPECT_THROW(run_reward_experiment(config), std::invalid_argument);
  config = RewardExperimentConfig{};
  config.runs = 0;
  EXPECT_THROW(run_reward_experiment(config), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::sim
