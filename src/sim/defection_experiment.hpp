// The Fig-3 experiment: how the share of nodes extracting final /
// tentative / no blocks evolves per round as a fraction of the network
// defects. Multiple independent runs, trimmed-mean aggregation.
#pragma once

#include "consensus/params.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"

namespace roleshare::sim {

struct DefectionExperimentConfig {
  NetworkConfig network;  // template; seed is offset per run
  std::size_t runs = 100;
  std::size_t rounds = 50;
  double trim_fraction = 0.2;
  /// When true the consensus committee expectations are re-scaled to each
  /// run's total stake (required for small simulated networks).
  bool scale_params_to_stake = true;
  consensus::ConsensusParams params{};
};

struct DefectionSeries {
  std::vector<RoundAggregate> rounds;
  /// Fraction of runs in which the chain gained at least one non-empty
  /// block (network-level liveness indicator).
  double runs_with_progress = 0.0;
};

/// Runs the experiment. Deterministic in config.network.seed.
DefectionSeries run_defection_experiment(
    const DefectionExperimentConfig& config);

}  // namespace roleshare::sim
