// orch coordinator + worker agents, end to end (DESIGN.md §11): real
// forked workers over a real Unix socket, driving a small fig3 bench
// through the type-erased ShardableBench surface. The contract under
// test is the ISSUE's acceptance bar — the orchestrated series document
// is BYTE-identical to a single-process run, including under injected
// worker kills, dropped assignments and re-issued windows — plus the
// loud-failure paths (attempt cap, config drift).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "bench_drivers.hpp"
#include "bench_util.hpp"
#include "orch/coordinator.hpp"
#include "orch/spawn.hpp"
#include "orch/wire.hpp"
#include "orch/worker.hpp"
#include "shard_util.hpp"

namespace {

using roleshare::bench::ShardableBench;
using roleshare::bench::ShardKnobs;

// Owns the argv a bench factory parses. The factories and arg helpers
// take (int, char**) exactly like main, so tests fabricate one.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) pointers_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(pointers_.size()); }
  char** argv() { return pointers_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> pointers_;
};

// A fig3 run small enough for a unit test but big enough to split into
// several windows across several workers. threads=1 keeps the forked
// children single-threaded (fork + live thread pools do not mix).
Argv small_fig3_argv() {
  return Argv({"test_orchestrator", "--nodes=60", "--runs=6", "--rounds=5",
               "--threads=1", "--inner-threads=1"});
}

ShardableBench small_fig3() {
  Argv a = small_fig3_argv();
  return roleshare::bench::make_shardable_bench("fig3_defection", a.argc(),
                                                a.argv());
}

// Short-lived scratch dir under /tmp — Unix socket paths have a ~107
// byte kernel cap, so the (long) gtest TempDir is not usable here.
std::string make_scratch_dir() {
  std::string tmpl = "/tmp/orchtestXXXXXX";
  const char* dir = ::mkdtemp(tmpl.data());
  if (dir == nullptr) throw std::runtime_error("mkdtemp failed");
  return dir;
}

// The single-process reference: execute the whole run range in-process,
// fold the one resulting partial document, write the series. This is
// the exact encode/fold/write path merge_partials trusts, which the
// existing shard tests pin as byte-identical to the plain bench binary.
void write_reference_series(const std::string& dir,
                            const std::string& series_out) {
  ShardableBench bench = small_fig3();
  ShardKnobs knobs;
  knobs.runs = bench.runs;
  knobs.partial_out = dir + "/reference.partial";
  const roleshare::orch::WindowOutcome outcome = bench.run_window(knobs);
  ASSERT_TRUE(outcome.complete);
  bench.fold(roleshare::bench::read_text_file(knobs.partial_out), 0,
             bench.runs, "reference");
  bench.write_series(series_out);
}

struct Injection {
  std::size_t kill_after_runs = 0;   // worker 0 only
  std::size_t drop_assignments = 0;  // worker 0 only
  std::size_t checkpoint_every = 0;
  /// Any attempt >= 2 throws from the runner. With no other fault
  /// injection the only attempt 2 in a job is the injected re-issue of
  /// an already-folded window, so this makes the re-execution FAIL.
  bool fail_reissued = false;
  std::string store_dir;
};

// The test-side twin of the orchestrate CLI's spawn closure: fork a
// child that rebuilds the same bench from the same argv and runs the
// worker agent loop against `socket_path`. Fault injection targets
// worker 0 only, so respawned replacements finish the job.
roleshare::orch::SpawnWorkerFn make_spawner(const std::string& socket_path,
                                            const Injection& injection) {
  return [socket_path, injection](std::uint32_t worker_id) {
    return roleshare::orch::spawn_child([socket_path, injection,
                                         worker_id]() {
      ShardableBench mine = small_fig3();
      roleshare::orch::WorkerOptions options;
      options.socket_path = socket_path;
      options.worker_id = worker_id;
      if (worker_id == 0) {
        options.kill_after_runs = injection.kill_after_runs;
        options.drop_assignments = injection.drop_assignments;
      }
      roleshare::orch::WindowRunner runner;
      runner.config_echo = mine.config_echo;
      runner.run =
          [&](const roleshare::orch::WindowAssignment& assignment,
              std::size_t stop_after,
              const std::function<void(std::size_t)>& on_checkpoint) {
            if (injection.fail_reissued && assignment.attempt >= 2)
              throw std::runtime_error("injected re-execution failure");
            ShardKnobs knobs;
            knobs.runs = mine.runs;
            knobs.shard = roleshare::sim::RunShard{assignment.run_begin,
                                                   assignment.run_end};
            knobs.partial_out = assignment.spool_path;
            knobs.partial_in = assignment.resume_path;
            knobs.checkpoint_every = injection.checkpoint_every;
            knobs.stop_after = stop_after;
            knobs.store_dir = injection.store_dir;
            knobs.on_checkpoint = on_checkpoint;
            return mine.run_window(knobs);
          };
      return roleshare::orch::run_worker(options, runner);
    });
  };
}

// Runs a full orchestrated job in `dir` and writes `series_out`.
roleshare::orch::JobStats run_job(const std::string& dir,
                                  const std::string& series_out,
                                  roleshare::orch::JobConfig job,
                                  const Injection& injection) {
  ShardableBench bench = small_fig3();
  job.runs = bench.runs;
  job.socket_path = dir + "/orch.sock";
  job.spool_dir = dir;
  roleshare::orch::JobCallbacks callbacks;
  callbacks.config_echo = bench.config_echo;
  callbacks.fold = bench.fold;
  callbacks.finalize = [&bench, series_out]() {
    bench.write_series(series_out);
  };
  return roleshare::orch::run_coordinator(job, callbacks,
                                          make_spawner(job.socket_path,
                                                       injection));
}

void expect_byte_identical(const std::string& dir,
                           const std::string& orchestrated) {
  const std::string reference_path = dir + "/reference_series.json";
  write_reference_series(dir, reference_path);
  const std::string expected =
      roleshare::bench::read_text_file(reference_path);
  const std::string actual = roleshare::bench::read_text_file(orchestrated);
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(expected, actual);
}

TEST(Orchestrator, MultiWorkerSeriesIsByteIdenticalToSingleProcess) {
  const std::string dir = make_scratch_dir();
  roleshare::orch::JobConfig job;
  job.window = 2;  // 6 runs -> 3 windows
  job.workers = 3;
  const roleshare::orch::JobStats stats =
      run_job(dir, dir + "/orch_series.json", job, Injection{});
  EXPECT_EQ(stats.windows, 3u);
  EXPECT_EQ(stats.folded, 3u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.worker_deaths, 0u);
  expect_byte_identical(dir, dir + "/orch_series.json");
}

TEST(Orchestrator, KilledWorkerResumesFromCheckpointByteIdentically) {
  // Worker 0 _exit(9)s after two runs — mid-window, because its last
  // checkpoint landed inside [0, 3). The replacement must resume from
  // the advertised checkpoint and the final series must not change by
  // one byte.
  const std::string dir = make_scratch_dir();
  Injection injection;
  injection.kill_after_runs = 2;
  injection.checkpoint_every = 1;
  roleshare::orch::JobConfig job;
  job.window = 3;  // 6 runs -> 2 windows
  job.workers = 2;
  const roleshare::orch::JobStats stats =
      run_job(dir, dir + "/orch_series.json", job, injection);
  EXPECT_EQ(stats.folded, 2u);
  EXPECT_GE(stats.worker_deaths, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.respawns, 1u);
  EXPECT_GE(stats.checkpoints, 1u);
  expect_byte_identical(dir, dir + "/orch_series.json");
}

TEST(Orchestrator, ReissuedWindowIsServedFromStoreNotRecomputed) {
  // After window 1 folds, the coordinator re-issues it (fault
  // injection). The first attempt published the finished partial to the
  // result store, so the re-execution must be a cache hit whose
  // duplicate DONE is discarded — the acceptance criterion that retries
  // are cheap by construction.
  const std::string dir = make_scratch_dir();
  Injection injection;
  injection.store_dir = dir + "/store";
  roleshare::orch::JobConfig job;
  job.window = 2;  // 6 runs -> 3 windows
  job.workers = 2;
  job.reissue_window = 1;
  const roleshare::orch::JobStats stats =
      run_job(dir, dir + "/orch_series.json", job, injection);
  EXPECT_EQ(stats.folded, 3u);
  EXPECT_GE(stats.store_hits, 1u);
  EXPECT_EQ(stats.duplicate_results, 1u);
  EXPECT_EQ(stats.worker_deaths, 0u);
  expect_byte_identical(dir, dir + "/orch_series.json");
}

TEST(Orchestrator, FailedReissueDoesNotHangTheJob) {
  // The injected re-execution of an already-folded window FAILs (its
  // runner throws instead of producing a duplicate DONE). The
  // coordinator must stop waiting for that duplicate: leaking the
  // outstanding-reissue count would leave complete() false forever and
  // the job polling silently after every window folded.
  const std::string dir = make_scratch_dir();
  Injection injection;
  injection.fail_reissued = true;
  roleshare::orch::JobConfig job;
  job.window = 2;  // 6 runs -> 3 windows
  job.workers = 2;
  job.reissue_window = 1;
  const roleshare::orch::JobStats stats =
      run_job(dir, dir + "/orch_series.json", job, injection);
  EXPECT_EQ(stats.folded, 3u);
  EXPECT_EQ(stats.duplicate_results, 0u);
  // The failed re-execution must not count as (or trigger) a retry —
  // the window is already folded, there is nothing to requeue.
  EXPECT_EQ(stats.retries, 0u);
  expect_byte_identical(dir, dir + "/orch_series.json");
}

// Blocking read of one message off a raw scripted-worker socket.
roleshare::orch::Message read_one(int fd,
                                  roleshare::orch::MessageBuffer& buffer) {
  while (true) {
    if (auto m = buffer.next()) return *m;
    char chunk[4096];
    const ssize_t got = ::read(fd, chunk, sizeof(chunk));
    if (got <= 0) throw std::runtime_error("coordinator closed the socket");
    buffer.feed(std::string_view(chunk, static_cast<std::size_t>(got)));
  }
}

TEST(Orchestrator, StragglerDeathDoesNotStealTheReissuedLease) {
  // Worker 0 takes the only window, goes silent past the lease deadline
  // (so the window is re-issued to worker 1 as attempt 2), then sends a
  // late superseded PROGRESS and dies. Neither event may touch attempt
  // 2's lease: the stale PROGRESS must not renew it, and the stale EOF
  // must not requeue the window a third time — that would inflate the
  // attempt count toward max_attempts and spawn a pointless concurrent
  // attempt 3 while attempt 2 is actively finishing the job.
  const std::string dir = make_scratch_dir();
  const std::string socket_path = dir + "/orch.sock";
  ShardableBench bench = small_fig3();
  roleshare::orch::JobConfig job;
  job.runs = bench.runs;
  job.window = bench.runs;  // one window, so the lease story is exact
  job.workers = 2;
  job.lease_seconds = 0.8;
  job.max_attempts = 4;  // headroom: a spurious requeue shows in stats,
                         // it must not be masked by an attempt-cap abort
  job.socket_path = socket_path;
  job.spool_dir = dir;
  const roleshare::orch::SpawnWorkerFn spawn = [&](std::uint32_t worker_id) {
    if (worker_id == 0) {
      // The scripted straggler: HELLO, take the ASSIGN, stall past the
      // lease, late-checkpoint the superseded attempt, die without DONE.
      return roleshare::orch::spawn_child([socket_path]() {
        ShardableBench mine = small_fig3();
        const int fd = roleshare::orch::connect_unix(socket_path);
        roleshare::orch::MessageBuffer buffer("coordinator");
        roleshare::orch::send_message(
            fd, roleshare::orch::hello(0, mine.config_echo));
        const roleshare::orch::Message assignment = read_one(fd, buffer);
        if (assignment.type != roleshare::orch::MsgType::Assign) return 1;
        ::usleep(1200 * 1000);  // lease expired ~0.4s ago; re-issued
        try {
          roleshare::orch::send_message(
              fd, roleshare::orch::progress(assignment.window_index,
                                            assignment.attempt, 0));
        } catch (const std::exception&) {
          // Coordinator already gone — fine, the job finished without us.
        }
        ::usleep(100 * 1000);
        ::close(fd);
        return 0;
      });
    }
    // Worker 1 (and any respawn): a real runner that connects after the
    // straggler holds the lease, heartbeats its own attempt through a
    // long startup, and finishes only after the straggler's EOF landed.
    return roleshare::orch::spawn_child([socket_path, worker_id]() {
      ::usleep(100 * 1000);
      ShardableBench mine = small_fig3();
      roleshare::orch::WorkerOptions options;
      options.socket_path = socket_path;
      options.worker_id = worker_id;
      roleshare::orch::WindowRunner runner;
      runner.config_echo = mine.config_echo;
      runner.run =
          [&](const roleshare::orch::WindowAssignment& assignment,
              std::size_t stop_after,
              const std::function<void(std::size_t)>& on_checkpoint) {
            for (int i = 0; i < 6; ++i) {
              ::usleep(150 * 1000);
              on_checkpoint(assignment.run_begin);  // keep OUR lease alive
            }
            ShardKnobs knobs;
            knobs.runs = mine.runs;
            knobs.shard = roleshare::sim::RunShard{assignment.run_begin,
                                                   assignment.run_end};
            knobs.partial_out = assignment.spool_path;
            knobs.partial_in = assignment.resume_path;
            knobs.stop_after = stop_after;
            knobs.on_checkpoint = on_checkpoint;
            return mine.run_window(knobs);
          };
      return roleshare::orch::run_worker(options, runner);
    });
  };
  roleshare::orch::JobCallbacks callbacks;
  callbacks.config_echo = bench.config_echo;
  callbacks.fold = bench.fold;
  const std::string series_out = dir + "/orch_series.json";
  callbacks.finalize = [&bench, series_out]() {
    bench.write_series(series_out);
  };
  const roleshare::orch::JobStats stats =
      roleshare::orch::run_coordinator(job, callbacks, spawn);
  EXPECT_EQ(stats.folded, 1u);
  // Exactly ONE requeue: the lease expiry that moved the window from
  // the straggler to worker 1. The straggler's late EOF must not add a
  // second one (nor hand the window to a third attempt).
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.duplicate_results, 0u);
  EXPECT_GE(stats.checkpoints, 1u);
  expect_byte_identical(dir, series_out);
}

TEST(Orchestrator, DroppedAssignmentExpiresLeaseAndReissues) {
  // Worker 0 silently swallows its first ASSIGN. The lease must expire
  // and the window must complete on the other worker — straggler-safe
  // because each attempt spools to its own file.
  const std::string dir = make_scratch_dir();
  Injection injection;
  injection.drop_assignments = 1;
  roleshare::orch::JobConfig job;
  job.window = 3;  // 6 runs -> 2 windows
  job.workers = 2;
  job.lease_seconds = 0.5;
  const roleshare::orch::JobStats stats =
      run_job(dir, dir + "/orch_series.json", job, injection);
  EXPECT_EQ(stats.folded, 2u);
  EXPECT_GE(stats.retries, 1u);
  expect_byte_identical(dir, dir + "/orch_series.json");
}

// A worker whose runner always throws: every attempt FAILs, so the
// window must burn max_attempts and abort the job loudly.
TEST(Orchestrator, AttemptCapAbortsTheJob) {
  const std::string dir = make_scratch_dir();
  const std::string socket_path = dir + "/orch.sock";
  roleshare::orch::JobConfig job;
  job.runs = 2;
  job.window = 2;
  job.workers = 1;
  job.max_attempts = 2;
  job.socket_path = socket_path;
  job.spool_dir = dir;
  roleshare::orch::JobCallbacks callbacks;
  callbacks.config_echo = "synthetic";
  callbacks.fold = [](const std::string&, std::size_t, std::size_t,
                      const std::string&) {};
  callbacks.finalize = []() {};
  const roleshare::orch::SpawnWorkerFn spawn = [&](std::uint32_t worker_id) {
    return roleshare::orch::spawn_child([socket_path, worker_id]() {
      roleshare::orch::WorkerOptions options;
      options.socket_path = socket_path;
      options.worker_id = worker_id;
      roleshare::orch::WindowRunner runner;
      runner.config_echo = "synthetic";
      runner.run = [](const roleshare::orch::WindowAssignment&, std::size_t,
                      const std::function<void(std::size_t)>&)
          -> roleshare::orch::WindowOutcome {
        throw std::runtime_error("synthetic permanent failure");
      };
      return roleshare::orch::run_worker(options, runner);
    });
  };
  try {
    roleshare::orch::run_coordinator(job, callbacks, spawn);
    FAIL() << "attempt cap did not abort the job";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("failed 2 attempts"),
              std::string::npos)
        << e.what();
  }
}

// A worker compiled against a drifted config (different HELLO echo)
// must abort the job before any window is assigned to it: the worker
// would compute a DIFFERENT experiment, and folding its partials would
// silently corrupt the series.
TEST(Orchestrator, ConfigEchoDriftAbortsTheJob) {
  const std::string dir = make_scratch_dir();
  const std::string socket_path = dir + "/orch.sock";
  roleshare::orch::JobConfig job;
  job.runs = 2;
  job.window = 2;
  job.workers = 1;
  job.socket_path = socket_path;
  job.spool_dir = dir;
  roleshare::orch::JobCallbacks callbacks;
  callbacks.config_echo = "coordinator config";
  callbacks.fold = [](const std::string&, std::size_t, std::size_t,
                      const std::string&) {};
  callbacks.finalize = []() {};
  const roleshare::orch::SpawnWorkerFn spawn = [&](std::uint32_t worker_id) {
    return roleshare::orch::spawn_child([socket_path, worker_id]() {
      roleshare::orch::WorkerOptions options;
      options.socket_path = socket_path;
      options.worker_id = worker_id;
      roleshare::orch::WindowRunner runner;
      runner.config_echo = "drifted worker config";
      runner.run = [](const roleshare::orch::WindowAssignment&, std::size_t,
                      const std::function<void(std::size_t)>&)
          -> roleshare::orch::WindowOutcome {
        return {};
      };
      return roleshare::orch::run_worker(options, runner);
    });
  };
  try {
    roleshare::orch::run_coordinator(job, callbacks, spawn);
    FAIL() << "config drift did not abort the job";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("drifted"), std::string::npos)
        << e.what();
  }
}

}  // namespace
