#include "orch/wire.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <sys/socket.h>
#include <unistd.h>

namespace roleshare::orch {

const char* to_string(MsgType type) {
  switch (type) {
    case MsgType::Hello: return "HELLO";
    case MsgType::Assign: return "ASSIGN";
    case MsgType::Progress: return "PROGRESS";
    case MsgType::Done: return "DONE";
    case MsgType::Fail: return "FAIL";
    case MsgType::Shutdown: return "SHUTDOWN";
  }
  throw std::invalid_argument("unknown MsgType value " +
                              std::to_string(static_cast<int>(type)));
}

Message hello(std::uint32_t worker_id, std::string config_echo) {
  Message m;
  m.type = MsgType::Hello;
  m.worker_id = worker_id;
  m.config_echo = std::move(config_echo);
  return m;
}

Message assign(std::uint32_t window_index, std::uint32_t attempt,
               std::uint64_t run_begin, std::uint64_t run_end,
               std::string spool_path, std::string resume_path) {
  Message m;
  m.type = MsgType::Assign;
  m.window_index = window_index;
  m.attempt = attempt;
  m.run_begin = run_begin;
  m.run_end = run_end;
  m.spool_path = std::move(spool_path);
  m.resume_path = std::move(resume_path);
  return m;
}

Message progress(std::uint32_t window_index, std::uint32_t attempt,
                 std::uint64_t cursor) {
  Message m;
  m.type = MsgType::Progress;
  m.window_index = window_index;
  m.attempt = attempt;
  m.cursor = cursor;
  return m;
}

Message done(std::uint32_t window_index, std::uint32_t attempt,
             bool store_hit, std::uint64_t partial_bytes,
             std::string spool_path) {
  Message m;
  m.type = MsgType::Done;
  m.window_index = window_index;
  m.attempt = attempt;
  m.store_hit = store_hit;
  m.partial_bytes = partial_bytes;
  m.spool_path = std::move(spool_path);
  return m;
}

Message fail(std::uint32_t window_index, std::uint32_t attempt,
             std::string error) {
  Message m;
  m.type = MsgType::Fail;
  m.window_index = window_index;
  m.attempt = attempt;
  m.error = std::move(error);
  return m;
}

Message shutdown(std::string reason) {
  Message m;
  m.type = MsgType::Shutdown;
  m.reason = std::move(reason);
  return m;
}

std::string encode(const Message& message) {
  util::framed::Writer w(kWireMagic, kWireVersion);
  w.begin_section(to_string(message.type));
  switch (message.type) {
    case MsgType::Hello:
      w.put_u32(message.worker_id);
      w.put_string(message.config_echo);
      break;
    case MsgType::Assign:
      w.put_u32(message.window_index);
      w.put_u32(message.attempt);
      w.put_u64(message.run_begin);
      w.put_u64(message.run_end);
      w.put_string(message.spool_path);
      w.put_string(message.resume_path);
      break;
    case MsgType::Progress:
      w.put_u32(message.window_index);
      w.put_u32(message.attempt);
      w.put_u64(message.cursor);
      break;
    case MsgType::Done:
      w.put_u32(message.window_index);
      w.put_u32(message.attempt);
      w.put_u8(message.store_hit ? 1 : 0);
      w.put_u64(message.partial_bytes);
      w.put_string(message.spool_path);
      break;
    case MsgType::Fail:
      w.put_u32(message.window_index);
      w.put_u32(message.attempt);
      w.put_string(message.error);
      break;
    case MsgType::Shutdown:
      w.put_string(message.reason);
      break;
  }
  w.end_section();
  const std::string frame = w.finish();
  if (frame.size() > kMaxMessageBytes)
    throw std::invalid_argument("orch wire message exceeds " +
                                std::to_string(kMaxMessageBytes) + " bytes");
  std::string out;
  out.reserve(4 + frame.size());
  const auto len = static_cast<std::uint32_t>(frame.size());
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  out.append(frame);
  return out;
}

Message decode_frame(std::string_view frame, const std::string& origin) {
  util::framed::Reader r(frame, kWireMagic, kWireVersion, origin);
  const std::string name = r.peek_section_name();
  Message m;
  if (name == "HELLO") {
    m.type = MsgType::Hello;
    r.begin_section(name);
    m.worker_id = r.get_u32();
    m.config_echo = r.get_string();
  } else if (name == "ASSIGN") {
    m.type = MsgType::Assign;
    r.begin_section(name);
    m.window_index = r.get_u32();
    m.attempt = r.get_u32();
    m.run_begin = r.get_u64();
    m.run_end = r.get_u64();
    m.spool_path = r.get_string();
    m.resume_path = r.get_string();
  } else if (name == "PROGRESS") {
    m.type = MsgType::Progress;
    r.begin_section(name);
    m.window_index = r.get_u32();
    m.attempt = r.get_u32();
    m.cursor = r.get_u64();
  } else if (name == "DONE") {
    m.type = MsgType::Done;
    r.begin_section(name);
    m.window_index = r.get_u32();
    m.attempt = r.get_u32();
    m.store_hit = r.get_u8() != 0;
    m.partial_bytes = r.get_u64();
    m.spool_path = r.get_string();
  } else if (name == "FAIL") {
    m.type = MsgType::Fail;
    r.begin_section(name);
    m.window_index = r.get_u32();
    m.attempt = r.get_u32();
    m.error = r.get_string();
  } else if (name == "SHUTDOWN") {
    m.type = MsgType::Shutdown;
    r.begin_section(name);
    m.reason = r.get_string();
  } else {
    throw util::framed::Error(origin + ": unknown message type \"" + name +
                              "\" — not a protocol message of version " +
                              std::to_string(kWireVersion));
  }
  r.end_section();
  r.finish();
  return m;
}

std::optional<Message> MessageBuffer::next() {
  if (buffer_.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(buffer_[static_cast<size_t>(i)]))
           << (8 * i);
  // A frame is at least magic+version+minimal section header; 0 or a
  // giant length means the stream is desynchronized — there is no way
  // to find the next boundary, so fail loudly.
  if (len == 0 || len > kMaxMessageBytes)
    throw util::framed::Error(
        origin_ + ": message length prefix " + std::to_string(len) +
        " is outside (0, " + std::to_string(kMaxMessageBytes) +
        "] — byte stream corrupt");
  if (buffer_.size() < 4 + static_cast<std::size_t>(len)) return std::nullopt;
  const Message m = decode_frame(
      std::string_view(buffer_).substr(4, len), origin_);
  buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  return m;
}

void send_message(int fd, const Message& message) {
  const std::string bytes = encode(message);
  std::size_t off = 0;
  while (off < bytes.size()) {
    // MSG_NOSIGNAL: a peer that already exited must surface as an EPIPE
    // exception the caller can requeue on — the default SIGPIPE
    // disposition would kill the whole process instead.
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("orch: write failed sending ") +
                               to_string(message.type) + ": " +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace roleshare::orch
