#include "consensus/binary_ba.hpp"

#include "consensus/roles.hpp"
#include "util/require.hpp"

namespace roleshare::consensus {

BinaryBaState::BinaryBaState(crypto::Hash256 initial,
                             crypto::Hash256 empty_hash,
                             std::uint32_t max_iterations)
    : initial_(initial),
      empty_hash_(empty_hash),
      current_(initial),
      max_iterations_(max_iterations) {
  RS_REQUIRE(max_iterations > 0, "max iterations");
}

std::uint32_t BinaryBaState::step_number() const {
  return kFirstBinaryStep + 3 * iteration_ + sub_step_;
}

void BinaryBaState::advance(std::optional<crypto::Hash256> counted,
                            bool coin) {
  RS_REQUIRE(running(), "advance on a concluded machine");

  switch (sub_step_) {
    case 0: {
      // Sub-step A: looking for agreement on a non-empty block.
      if (!counted.has_value()) {
        current_ = initial_;
      } else if (*counted != empty_hash_) {
        result_ = *counted;
        concluding_iteration_ = iteration_ + 1;
        status_ = BaStatus::ConcludedBlock;
        return;
      } else {
        current_ = empty_hash_;
      }
      sub_step_ = 1;
      return;
    }
    case 1: {
      // Sub-step B: looking for agreement on the empty block.
      if (!counted.has_value()) {
        current_ = empty_hash_;
      } else if (*counted == empty_hash_) {
        result_ = empty_hash_;
        concluding_iteration_ = iteration_ + 1;
        status_ = BaStatus::ConcludedEmpty;
        return;
      } else {
        current_ = *counted;
      }
      sub_step_ = 2;
      return;
    }
    case 2: {
      // Sub-step C: no agreement either way — follow the quorum if one
      // exists, otherwise the common coin chooses the next value.
      if (counted.has_value()) {
        current_ = *counted;
      } else {
        current_ = coin ? initial_ : empty_hash_;
      }
      sub_step_ = 0;
      ++iteration_;
      if (iteration_ >= max_iterations_) status_ = BaStatus::Exhausted;
      return;
    }
  }
  RS_ENSURE(false, "unreachable sub-step");
}

}  // namespace roleshare::consensus
