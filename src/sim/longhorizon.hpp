// Population-scale long-horizon economy runs (DESIGN.md §10).
//
// The question the paper's figures cannot ask: what does role-based
// reward sharing do to the *wealth distribution* when rewards compound
// into stake over thousands of rounds at populations of 10^5..10^6?
// Richer nodes win more seats, seats earn rewards, rewards buy stake —
// a feedback loop whose concentration effects only show up at horizons
// far beyond the dense engine's reach.
//
// One run: a Network under CommitteeModel::Sampled, driven round by round
// through the sparse O(committee · log N) path. Each round's role payouts
// (econ/sparse_payout.hpp, fixed split, Foundation Table-III budget) are
// credited back into the winners' accounts; the SparseRoundContext and
// the streaming concentration sketches absorb each credit in O(log N) /
// O(1), so a round's total cost never touches the population size.
//
// Per-round series (streaming, O(1) per update — util/streaming_stats):
//   gini          quantized Gini of the stake distribution
//   top_share     stake share of the richest `top_fraction` of holders
//   defector_corr point-biserial correlation between the static defector
//                 cohort and wealth (negative = defectors falling behind)
//   final_pct     consensus health, same metric as the Fig-3 series
//
// Sharded execution rides the shared ExperimentPartial machinery exactly
// like the reward experiment: run_longhorizon_partial executes the
// config's shard window into a mergeable LongHorizonPartial, and N
// exact-backend shards merged in window order reproduce the
// single-process result bit for bit (bench/fig_longhorizon.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "consensus/params.hpp"
#include "econ/bi_bounds.hpp"
#include "sim/aggregators.hpp"
#include "sim/experiment_runner.hpp"
#include "sim/network.hpp"
#include "sim/partial.hpp"

namespace roleshare::sim {

struct LongHorizonConfig {
  /// Population and network shape (stakes U(stake_lo, stake_hi),
  /// defection_rate scripted defectors, faulty_rate offline) — the
  /// NetworkConfig fields that matter here, surfaced flat so the spec
  /// echo stays explicit.
  std::size_t node_count = 100'000;
  std::uint64_t seed = 21;
  std::int64_t stake_lo = 1;
  std::int64_t stake_hi = 50;
  double defection_rate = 0.10;
  double faulty_rate = 0.0;
  std::size_t fan_out = 5;
  double delay_lo_ms = 20.0;
  double delay_hi_ms = 120.0;

  std::size_t runs = 4;
  std::size_t rounds_per_run = 2000;
  std::size_t threads = 1;
  std::size_t inner_threads = 1;

  /// Fixed reward split (α leaders, β committee; γ = 1 − α − β to Others,
  /// reported but not individually compounded — sparse_payout.hpp).
  double alpha = 0.30;
  double beta = 0.30;

  /// The "top-k" of the concentration series: richest fraction of holders.
  double top_fraction = 0.01;

  AggBackend agg = AggBackend::Exact;
  StreamingAggConfig streaming{};
  RunShard shard{};
};

struct LongHorizonResult {
  /// Per-round means across runs (length rounds_per_run).
  std::vector<double> gini_per_round;
  std::vector<double> top_share_per_round;
  std::vector<double> defector_corr_per_round;
  std::vector<double> final_pct_per_round;
  /// Run-end scalars, averaged across runs.
  double mean_end_gini = 0.0;
  double mean_end_top_share = 0.0;
  double mean_end_defector_corr = 0.0;
  /// Mean per-run total credited reward, Algos.
  double mean_paid_algos = 0.0;
  std::size_t accumulator_bytes = 0;
};

/// The experiment-specific half of a LongHorizonPartial: four per-round
/// series accumulators plus the run-end scalar banks, fed in record order
/// so exact-backend merges replay a serial execution exactly.
class LongHorizonPayload {
 public:
  static constexpr std::string_view kKind = "longhorizon";

  LongHorizonPayload(std::size_t rounds, AggBackend backend,
                     const StreamingAggConfig& streaming);

  void record_round(std::size_t round_index, double gini, double top_share,
                    double defector_corr, double final_pct);
  void record_run(double end_gini, double end_top_share,
                  double end_defector_corr, double paid_algos);

  void merge(const LongHorizonPayload& next);

  LongHorizonResult finalize(const PartialEnvelope& envelope) const;

  std::size_t accumulator_bytes() const;

  util::json::Value to_json() const;
  static LongHorizonPayload from_json(const util::json::Value& value,
                                      const PartialEnvelope& envelope);

 private:
  LongHorizonPayload(std::unique_ptr<RoundAccumulator> gini,
                     std::unique_ptr<RoundAccumulator> top_share,
                     std::unique_ptr<RoundAccumulator> corr,
                     std::unique_ptr<RoundAccumulator> final_pct,
                     ScalarBank end_gini, ScalarBank end_top_share,
                     ScalarBank end_corr, ScalarBank paid);

  std::unique_ptr<RoundAccumulator> gini_;
  std::unique_ptr<RoundAccumulator> top_share_;
  std::unique_ptr<RoundAccumulator> corr_;
  std::unique_ptr<RoundAccumulator> final_pct_;
  ScalarBank end_gini_;
  ScalarBank end_top_share_;
  ScalarBank end_corr_;
  ScalarBank paid_;
};

using LongHorizonPartial = ExperimentPartial<LongHorizonPayload>;

/// Canonical echo of every result-affecting config field — the spec-hash
/// input shared by all partials of one long-horizon experiment.
util::json::Value longhorizon_spec_echo(const LongHorizonConfig& config);

/// Executes config.shard's run window through the sparse round path and
/// reduces it into a mergeable partial. Deterministic in config.seed,
/// independent of both thread knobs.
LongHorizonPartial run_longhorizon_partial(const LongHorizonConfig& config);

/// run_longhorizon_partial + finalize — the single-process experiment.
LongHorizonResult run_longhorizon(const LongHorizonConfig& config);

}  // namespace roleshare::sim
