#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace roleshare::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsIndependentOfParentConsumption) {
  Rng parent1(7);
  Rng parent2(7);
  (void)parent2();  // consume from one parent only
  Rng child1 = parent1.split(3);
  Rng child2 = parent2.split(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, SplitLabelsProduceDistinctStreams) {
  Rng parent(7);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, StringSplitMatchesItself) {
  Rng parent(9);
  Rng a = parent.split("stakes");
  Rng b = parent.split("stakes");
  Rng c = parent.split("behaviors");
  EXPECT_EQ(a(), b());
  Rng a2 = parent.split("stakes");
  EXPECT_NE(a2(), c());
}

TEST(Rng, UniformIntRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 7);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 7);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntRejectsBadRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalScaled) {
  Rng rng(19);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(100.0, 10.0);
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, SampleWithoutReplacementUnique) {
  Rng rng(29);
  const auto picks = rng.sample_without_replacement(100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto p : picks) EXPECT_LT(p, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(31);
  const auto picks = rng.sample_without_replacement(10, 10);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::array<int, 3> counts{};
  const int n = 30000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(1);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
}

TEST(Rng, DeriveSeedsMatchesPerLabelDeriveSeed) {
  const Rng parent(909);
  std::vector<std::uint64_t> labels;
  for (std::uint64_t i = 0; i < 257; ++i) labels.push_back(i * 31 + 7);
  std::vector<std::uint64_t> chunked(labels.size());
  parent.derive_seeds(labels, chunked);
  for (std::size_t i = 0; i < labels.size(); ++i)
    EXPECT_EQ(chunked[i], parent.derive_seed(labels[i]));
}

TEST(Rng, DeriveSeedsStreamsMatchSplitChains) {
  // The hot-path contract: constructing an Rng from a chunk-derived seed
  // must yield the exact stream split(label) would.
  const Rng parent(4242);
  const std::vector<std::uint64_t> labels = {0, 1, 5, 1000, 999'999};
  std::vector<std::uint64_t> seeds(labels.size());
  parent.derive_seeds(labels, seeds);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    Rng from_seed(seeds[i]);
    Rng from_split = parent.split(labels[i]);
    for (int draw = 0; draw < 16; ++draw)
      EXPECT_EQ(from_seed(), from_split());
  }
}

TEST(Rng, DeriveSeedsRejectsSizeMismatch) {
  const Rng parent(3);
  const std::vector<std::uint64_t> labels = {1, 2, 3};
  std::vector<std::uint64_t> out(2);
  EXPECT_THROW(parent.derive_seeds(labels, out), std::invalid_argument);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace roleshare::util
