#include "consensus/params.hpp"

#include <gtest/gtest.h>

namespace roleshare::consensus {
namespace {

TEST(Params, PaperDefaults) {
  const ConsensusParams p;
  EXPECT_EQ(p.expected_proposer_stake, 26u);   // S_L = 26 (paper §V-B)
  EXPECT_EQ(p.expected_step_stake, 1000u);     // S_STEP = 1k
  EXPECT_EQ(p.expected_final_stake, 10'000u);  // S_FINAL = 10k
  // S_M = S_STEP * 3 + S_FINAL = 13k, as used for the committee stake.
  EXPECT_EQ(p.expected_committee_stake_per_round(), 13'000u);
  EXPECT_DOUBLE_EQ(p.step_timeout_ms, 20'000.0);  // 20 s vote timeout
}

TEST(Params, QuorumsFollowThresholds) {
  ConsensusParams p;
  p.expected_step_stake = 1000;
  p.step_threshold = 0.685;
  EXPECT_DOUBLE_EQ(p.step_quorum(), 685.0);
  p.expected_final_stake = 10'000;
  p.final_threshold = 0.74;
  EXPECT_DOUBLE_EQ(p.final_quorum(), 7400.0);
}

TEST(Params, ValidateAcceptsDefaults) {
  const ConsensusParams p;
  EXPECT_NO_THROW(p.validate());
}

TEST(Params, ValidateRejectsBadThresholds) {
  ConsensusParams p;
  p.step_threshold = 0.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p.step_threshold = 1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ConsensusParams{};
  p.final_threshold = 0.3;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, ValidateRejectsZeroExpectations) {
  ConsensusParams p;
  p.expected_proposer_stake = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ConsensusParams{};
  p.expected_step_stake = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = ConsensusParams{};
  p.max_binary_iterations = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, ScaledForUsesAbsoluteTargetsAtScale) {
  // Large stake pools hit the absolute sub-user targets (40 step / 80
  // final) that balance quorum reliability against committee size.
  const ConsensusParams p = ConsensusParams::scaled_for(10'000);
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.expected_step_stake, 40u);
  EXPECT_EQ(p.expected_final_stake, 80u);
  EXPECT_EQ(p.expected_proposer_stake, 10u);
  // Committees stay a small fraction of total stake.
  EXPECT_LT(p.expected_final_stake, 10'000u / 10);
}

TEST(Params, ScaledForSmallStakeUsesFractions) {
  const ConsensusParams p = ConsensusParams::scaled_for(600);
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.expected_step_stake, 12u);   // 2% of 600, above floor 10
  EXPECT_EQ(p.expected_final_stake, 36u);  // 6% of 600
}

TEST(Params, ScaledForTinyNetworksStaysValid) {
  const ConsensusParams p = ConsensusParams::scaled_for(40);
  EXPECT_NO_THROW(p.validate());
  EXPECT_LE(p.expected_final_stake, 40u);
  EXPECT_GE(p.expected_step_stake, 10u);
}

TEST(Params, ScaledForRejectsNonPositiveStake) {
  EXPECT_THROW(ConsensusParams::scaled_for(0), std::invalid_argument);
  EXPECT_THROW(ConsensusParams::scaled_for(-5), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::consensus
