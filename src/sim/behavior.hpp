// Node behaviour types (§III-C): honest (always cooperate), honest-but-
// selfish (cooperate iff reward exceeds cost), malicious (arbitrary) and
// faulty (offline).
#pragma once

#include <cstdint>
#include <string_view>

#include "econ/cost_model.hpp"
#include "game/strategy.hpp"
#include "util/rng.hpp"

namespace roleshare::sim {

enum class BehaviorType : std::uint8_t {
  Honest,         // altruistic: cooperates unconditionally
  Selfish,        // honest-but-selfish: strategic C/D choice
  ScriptedDefect, // selfish node scripted to defect (Fig-3 scenarios)
  Malicious,      // arbitrary C/D (never modelled as forging, §III-C)
  Faulty,         // offline
};

constexpr std::string_view to_string(BehaviorType b) {
  switch (b) {
    case BehaviorType::Honest:
      return "honest";
    case BehaviorType::Selfish:
      return "selfish";
    case BehaviorType::ScriptedDefect:
      return "scripted-defect";
    case BehaviorType::Malicious:
      return "malicious";
    case BehaviorType::Faulty:
      return "faulty";
  }
  return "?";
}

/// Inputs a selfish node uses to decide its round strategy: the per-unit-
/// stake reward it observed last round and its election odds.
struct SelfishContext {
  double last_reward_per_stake = 0.0;  // µAlgos per Algo of stake, last round
  double p_leader = 0.0;               // probability of >= 1 proposer sub-user
  double p_committee = 0.0;            // probability of >= 1 committee sub-user
  std::int64_t stake = 0;              // this node's stake (Algos)
};

/// Picks the round strategy for a behaviour.
/// Selfish rule: cooperate iff expected reward (last observed rate x stake)
/// strictly exceeds expected cooperation cost (fixed cost plus election-
/// probability-weighted role costs) minus what defection would still earn.
game::Strategy choose_strategy(BehaviorType behavior,
                               const econ::CostModel& costs,
                               const SelfishContext& ctx, util::Rng& rng);

}  // namespace roleshare::sim
