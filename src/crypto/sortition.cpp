#include "crypto/sortition.hpp"

#include <cmath>

#include "util/require.hpp"

namespace roleshare::crypto {

std::uint64_t SortitionResult::priority() const {
  std::uint64_t best = 0;
  for (std::uint64_t j = 0; j < sub_users; ++j) {
    const Hash256 h = HashBuilder("roleshare.priority")
                          .add(vrf.output)
                          .add_u64(j)
                          .build();
    best = std::max(best, h.prefix_u64());
  }
  return best;
}

std::uint64_t binomial_inversion(double ratio, std::int64_t stake, double p) {
  RS_REQUIRE(ratio >= 0.0 && ratio < 1.0, "sortition ratio in [0,1)");
  RS_REQUIRE(stake >= 0, "non-negative stake");
  RS_REQUIRE(p >= 0.0 && p <= 1.0, "selection probability in [0,1]");
  if (stake == 0 || p == 0.0) return 0;
  if (p >= 1.0) return static_cast<std::uint64_t>(stake);

  // Walk the Binomial(stake, p) pmf: pmf(0) = (1-p)^w, then the standard
  // recurrence pmf(k+1) = pmf(k) * (w-k)/(k+1) * p/(1-p). For large w and
  // tiny p the pmf underflows gracefully; the cumulative sum is monotone so
  // the walk terminates.
  const double w = static_cast<double>(stake);
  const double odds = p / (1.0 - p);
  double pmf = std::pow(1.0 - p, w);
  double cdf = pmf;
  std::uint64_t k = 0;
  while (ratio >= cdf && k < static_cast<std::uint64_t>(stake)) {
    pmf *= (w - static_cast<double>(k)) / (static_cast<double>(k) + 1.0) *
           odds;
    cdf += pmf;
    ++k;
    if (pmf <= 0.0) {
      // Numerical tail exhausted: everything beyond here has measure ~0.
      // Treat the remaining ratio mass as the final bucket.
      return ratio >= cdf ? static_cast<std::uint64_t>(stake) : k;
    }
  }
  return k;
}

SortitionResult sortition(const KeyPair& key, const VrfInput& input,
                          std::int64_t stake, const SortitionParams& params) {
  RS_REQUIRE(params.expected_stake > 0, "expected committee stake");
  RS_REQUIRE(params.total_stake > 0, "total stake");
  RS_REQUIRE(stake >= 0 && stake <= params.total_stake, "stake in range");

  const VrfOutput vrf = vrf_evaluate(key, input);
  const double p = static_cast<double>(params.expected_stake) /
                   static_cast<double>(params.total_stake);
  const std::uint64_t j =
      binomial_inversion(vrf.ratio(), stake, std::min(p, 1.0));
  return SortitionResult{j, vrf};
}

std::vector<SortitionResult> sortition_batch(
    const std::vector<KeyPair>& keys, const VrfInput& input,
    const std::vector<std::int64_t>& stakes, const SortitionParams& params,
    const util::InnerExecutor& exec) {
  std::vector<SortitionResult> results;
  sortition_batch_into(keys, input, stakes, params, results, exec);
  return results;
}

void sortition_batch_into(const std::vector<KeyPair>& keys,
                          const VrfInput& input,
                          const std::vector<std::int64_t>& stakes,
                          const SortitionParams& params,
                          std::vector<SortitionResult>& results,
                          const util::InnerExecutor& exec) {
  RS_REQUIRE(keys.size() == stakes.size(), "keys/stakes size mismatch");
  RS_REQUIRE(params.expected_stake > 0, "expected committee stake");
  RS_REQUIRE(params.total_stake > 0, "total stake");
  results.resize(keys.size());

  // Everything constant across the batch is computed once: the VRF input
  // message, the selection probability, and the padded SHA-256 message
  // templates for the two per-node hashes
  //   proof  = H("roleshare.sig" || pk || msg)       (sign under pk)
  //   output = H("roleshare.vrf.out" || proof)
  // so the per-node cost is two slot writes and two compress runs.
  const Hash256 msg = input.message();
  const double p =
      std::min(static_cast<double>(params.expected_stake) /
                   static_cast<double>(params.total_stake),
               1.0);

  FixedHasher sign_layout("roleshare.sig");
  const std::size_t pk_slot = sign_layout.add_hash_slot();
  sign_layout.add(msg);
  const Sha256Fixed sign_template = sign_layout.build_template();

  FixedHasher out_layout("roleshare.vrf.out");
  const std::size_t proof_slot = out_layout.add_hash_slot();
  const Sha256Fixed out_template = out_layout.build_template();

  exec.for_each_chunk(
      keys.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
        // Per-chunk template copies: workers overwrite slots concurrently.
        Sha256Fixed sign_fixed = sign_template;
        Sha256Fixed out_fixed = out_template;
        for (std::size_t v = begin; v < end; ++v) {
          RS_REQUIRE(stakes[v] >= 0 && stakes[v] <= params.total_stake,
                     "stake in range");
          write_hash_slot(sign_fixed, pk_slot, keys[v].public_key().value);
          const Hash256 proof(sign_fixed.digest());
          write_hash_slot(out_fixed, proof_slot, proof);
          SortitionResult& r = results[v];
          r.vrf.proof = Signature{proof};
          r.vrf.output = Hash256(out_fixed.digest());
          r.sub_users = binomial_inversion(r.vrf.output.ratio(), stakes[v], p);
        }
      });
}

std::uint64_t verify_sortition(const PublicKey& pk, const VrfInput& input,
                               const VrfOutput& vrf, std::int64_t stake,
                               const SortitionParams& params) {
  RS_REQUIRE(params.expected_stake > 0, "expected committee stake");
  RS_REQUIRE(params.total_stake > 0, "total stake");
  if (!vrf_verify(pk, input, vrf)) return 0;
  const double p = static_cast<double>(params.expected_stake) /
                   static_cast<double>(params.total_stake);
  return binomial_inversion(vrf.ratio(), stake, std::min(p, 1.0));
}

}  // namespace roleshare::crypto
