// Signed Algo transfer — the "Transaction" message of §II-B2.
#pragma once

#include <cstdint>

#include "crypto/hash.hpp"
#include "crypto/keypair.hpp"
#include "ledger/types.hpp"

namespace roleshare::ledger {

class Transaction {
 public:
  /// Builds and signs a transfer of `amount` µAlgos (plus `fee`) from the
  /// key's account to `to`. Requires amount > 0 and fee >= 0.
  static Transaction create(const crypto::KeyPair& sender_key,
                            const crypto::PublicKey& to, MicroAlgos amount,
                            MicroAlgos fee, std::uint64_t nonce);

  /// Reassembles a transaction received over the wire, carrying an
  /// existing signature. The signature is NOT checked here — callers
  /// (AccountTable::validate, message handlers) verify explicitly.
  static Transaction from_parts(const crypto::PublicKey& sender,
                                const crypto::PublicKey& receiver,
                                MicroAlgos amount, MicroAlgos fee,
                                std::uint64_t nonce,
                                const crypto::Signature& signature);

  const crypto::PublicKey& sender() const { return sender_; }
  const crypto::PublicKey& receiver() const { return receiver_; }
  MicroAlgos amount() const { return amount_; }
  MicroAlgos fee() const { return fee_; }
  std::uint64_t nonce() const { return nonce_; }
  const crypto::Signature& signature() const { return signature_; }

  /// Content hash (excludes the signature).
  crypto::Hash256 id() const;

  /// Signature check only; balance checks are the AccountTable's job.
  bool verify_signature() const;

 private:
  Transaction() = default;

  crypto::PublicKey sender_;
  crypto::PublicKey receiver_;
  MicroAlgos amount_ = 0;
  MicroAlgos fee_ = 0;
  std::uint64_t nonce_ = 0;
  crypto::Signature signature_;
};

}  // namespace roleshare::ledger
