#include "sim/behavior.hpp"

#include <gtest/gtest.h>

namespace roleshare::sim {
namespace {

using game::Strategy;

TEST(Behavior, HonestAlwaysCooperates) {
  util::Rng rng(1);
  const SelfishContext broke{0.0, 0.0, 0.0, 1};  // zero rewards observed
  EXPECT_EQ(choose_strategy(BehaviorType::Honest, econ::CostModel{}, broke,
                            rng),
            Strategy::Cooperate);
}

TEST(Behavior, ScriptedDefectorAlwaysDefects) {
  util::Rng rng(1);
  const SelfishContext rich{1e9, 0.5, 0.5, 100};
  EXPECT_EQ(choose_strategy(BehaviorType::ScriptedDefect, econ::CostModel{},
                            rich, rng),
            Strategy::Defect);
}

TEST(Behavior, FaultyIsOffline) {
  util::Rng rng(1);
  EXPECT_EQ(choose_strategy(BehaviorType::Faulty, econ::CostModel{},
                            SelfishContext{}, rng),
            Strategy::Offline);
}

TEST(Behavior, MaliciousMixesBothStrategies) {
  util::Rng rng(2);
  bool saw_c = false, saw_d = false;
  for (int i = 0; i < 100; ++i) {
    const Strategy s = choose_strategy(BehaviorType::Malicious,
                                       econ::CostModel{}, SelfishContext{},
                                       rng);
    saw_c = saw_c || s == Strategy::Cooperate;
    saw_d = saw_d || s == Strategy::Defect;
  }
  EXPECT_TRUE(saw_c);
  EXPECT_TRUE(saw_d);
}

TEST(Behavior, SelfishDefectsWhenRewardBelowCost) {
  util::Rng rng(3);
  // Expected extra cost of cooperation >= c_K - c_so = 1 µAlgo; reward 0.
  const SelfishContext ctx{0.0, 0.01, 0.1, 10};
  EXPECT_EQ(choose_strategy(BehaviorType::Selfish, econ::CostModel{}, ctx,
                            rng),
            Strategy::Defect);
}

TEST(Behavior, SelfishCooperatesWhenRewardExceedsCost) {
  util::Rng rng(3);
  // Observed rate 5 µAlgos per stake unit on stake 10 = 50 µAlgos at stake;
  // expected extra cooperation cost is ~1-2 µAlgos.
  const SelfishContext ctx{5.0, 0.01, 0.1, 10};
  EXPECT_EQ(choose_strategy(BehaviorType::Selfish, econ::CostModel{}, ctx,
                            rng),
            Strategy::Cooperate);
}

TEST(Behavior, SelfishThresholdScalesWithElectionOdds) {
  util::Rng rng(4);
  // With certain leadership the extra cost is c_L - c_so = 11; a reward at
  // stake of 5 no longer suffices.
  const SelfishContext likely_leader{0.5, 1.0, 1.0, 10};
  EXPECT_EQ(choose_strategy(BehaviorType::Selfish, econ::CostModel{},
                            likely_leader, rng),
            Strategy::Defect);
  // The same observed rate with a big enough stake flips the decision.
  const SelfishContext whale{0.5, 1.0, 1.0, 100};
  EXPECT_EQ(choose_strategy(BehaviorType::Selfish, econ::CostModel{}, whale,
                            rng),
            Strategy::Cooperate);
}

TEST(Behavior, Names) {
  EXPECT_EQ(to_string(BehaviorType::Honest), "honest");
  EXPECT_EQ(to_string(BehaviorType::Selfish), "selfish");
  EXPECT_EQ(to_string(BehaviorType::ScriptedDefect), "scripted-defect");
  EXPECT_EQ(to_string(BehaviorType::Malicious), "malicious");
  EXPECT_EQ(to_string(BehaviorType::Faulty), "faulty");
}

}  // namespace
}  // namespace roleshare::sim
