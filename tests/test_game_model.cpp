#include "game/game_model.hpp"

#include <gtest/gtest.h>

namespace roleshare::game {
namespace {

using consensus::Role;
using econ::CostModel;
using econ::RoleSnapshot;

// Small population: 2 leaders, 3 committee, 4 others.
GameConfig base_config(SchemeKind scheme, double bi_algos = 10.0) {
  GameConfig config{
      RoleSnapshot({Role::Leader, Role::Leader, Role::Committee,
                    Role::Committee, Role::Committee, Role::Other,
                    Role::Other, Role::Other, Role::Other},
                   {5, 8, 10, 12, 9, 20, 15, 30, 25}),
      CostModel{},
      scheme,
      bi_algos * 1e6,
      econ::RewardSplit(0.2, 0.3),
      {},
      0.685};
  return config;
}

TEST(GameModel, AllCooperateCreatesBlock) {
  const AlgorandGame game(base_config(SchemeKind::StakeProportional));
  EXPECT_TRUE(game.block_created(all_cooperate(game.player_count())));
}

TEST(GameModel, AllDefectCreatesNoBlock) {
  const AlgorandGame game(base_config(SchemeKind::StakeProportional));
  EXPECT_FALSE(game.block_created(all_defect(game.player_count())));
}

TEST(GameModel, NoLeaderNoBlock) {
  const AlgorandGame game(base_config(SchemeKind::StakeProportional));
  Profile p = all_cooperate(game.player_count());
  p[0] = Strategy::Defect;
  p[1] = Strategy::Defect;  // both leaders gone
  EXPECT_FALSE(game.block_created(p));
}

TEST(GameModel, OneLeaderSuffices) {
  const AlgorandGame game(base_config(SchemeKind::StakeProportional));
  Profile p = all_cooperate(game.player_count());
  p[0] = Strategy::Defect;  // one leader remains
  EXPECT_TRUE(game.block_created(p));
}

TEST(GameModel, CommitteeQuorumRequired) {
  const AlgorandGame game(base_config(SchemeKind::StakeProportional));
  Profile p = all_cooperate(game.player_count());
  // Committee stakes 10, 12, 9 (total 31, threshold 0.685 -> 21.2).
  p[3] = Strategy::Defect;  // 19 remaining < 21.2 -> no block
  EXPECT_FALSE(game.block_created(p));
  p[3] = Strategy::Cooperate;
  p[4] = Strategy::Defect;  // 22 remaining > 21.2 -> block
  EXPECT_TRUE(game.block_created(p));
}

TEST(GameModel, SyncSetMemberDefectionKillsBlock) {
  GameConfig config = base_config(SchemeKind::RoleBased);
  config.sync_set.assign(config.snapshot.node_count(), false);
  config.sync_set[5] = true;  // Other node 5 is in Y
  const AlgorandGame game(config);
  Profile p = all_cooperate(game.player_count());
  EXPECT_TRUE(game.block_created(p));
  p[5] = Strategy::Defect;
  EXPECT_FALSE(game.block_created(p));
  // A non-Y other defecting does not matter.
  p[5] = Strategy::Cooperate;
  p[6] = Strategy::Defect;
  EXPECT_TRUE(game.block_created(p));
}

TEST(GameModel, StakeProportionalPayoffsFollowEq4) {
  // Eq (4): u_j(C) = r_i s_j − c_role with r_i = B_i / S_N.
  const GameConfig config = base_config(SchemeKind::StakeProportional, 13.4);
  const AlgorandGame game(config);
  const Profile p = all_cooperate(game.player_count());
  const double sn = 134.0;  // total stake
  const double ri = 13.4e6 / sn;
  EXPECT_NEAR(game.payoff(p, 0), ri * 5 - 16.0, 1e-6);   // leader
  EXPECT_NEAR(game.payoff(p, 2), ri * 10 - 12.0, 1e-6);  // committee
  EXPECT_NEAR(game.payoff(p, 5), ri * 20 - 6.0, 1e-6);   // other
}

TEST(GameModel, StakeProportionalDefectorKeepsReward) {
  // No punishment: an online defector earns the same r_i s_j but pays only
  // c_so — the root cause of Theorem 2.
  const GameConfig config = base_config(SchemeKind::StakeProportional, 13.4);
  const AlgorandGame game(config);
  Profile p = all_cooperate(game.player_count());
  p[5] = Strategy::Defect;
  const double ri = 13.4e6 / 134.0;
  EXPECT_NEAR(game.payoff(p, 5), ri * 20 - 5.0, 1e-6);
}

TEST(GameModel, NoBlockMeansNoReward) {
  const GameConfig config = base_config(SchemeKind::StakeProportional);
  const AlgorandGame game(config);
  const Profile p = all_defect(game.player_count());
  for (ledger::NodeId v = 0; v < game.player_count(); ++v) {
    EXPECT_DOUBLE_EQ(game.payoff(p, v), -5.0);  // -c_so
  }
}

TEST(GameModel, CooperatingIntoAllDefectLosesRoleCost) {
  const GameConfig config = base_config(SchemeKind::StakeProportional);
  const AlgorandGame game(config);
  Profile p = all_defect(game.player_count());
  p[0] = Strategy::Cooperate;  // lone leader: still no block
  EXPECT_DOUBLE_EQ(game.payoff(p, 0), -16.0);  // -c_L (Theorem 1 case 1)
}

TEST(GameModel, OfflinePaysSortitionAndEarnsNothing) {
  const GameConfig config = base_config(SchemeKind::StakeProportional, 50.0);
  const AlgorandGame game(config);
  Profile p = all_cooperate(game.player_count());
  p[5] = Strategy::Offline;
  EXPECT_DOUBLE_EQ(game.payoff(p, 5), -5.0);
  // The offline node's stake leaves S_N, raising everyone else's rate.
  const double ri = 50.0e6 / (134.0 - 20.0);
  EXPECT_NEAR(game.payoff(p, 6), ri * 15 - 6.0, 1e-6);
}

TEST(GameModel, RoleBasedCooperativePayoffsFollowEq5) {
  // Eq (5): r_L = αB/S_L, r_M = βB/S_M, r_K = γB/S_K.
  GameConfig config = base_config(SchemeKind::RoleBased, 10.0);
  const AlgorandGame game(config);
  const Profile p = all_cooperate(game.player_count());
  const double b = 10.0e6;
  const double sl = 13, sm = 31, sk = 90;
  EXPECT_NEAR(game.payoff(p, 0), 0.2 * b * 5 / sl - 16.0, 1e-6);
  EXPECT_NEAR(game.payoff(p, 2), 0.3 * b * 10 / sm - 12.0, 1e-6);
  EXPECT_NEAR(game.payoff(p, 5), 0.5 * b * 20 / sk - 6.0, 1e-6);
}

TEST(GameModel, RoleBasedDefectingLeaderPaidFromGammaPot) {
  // Lemma-2 deviation payoff: γB s/(S_K + s_l) − c_so.
  GameConfig config = base_config(SchemeKind::RoleBased, 10.0);
  const AlgorandGame game(config);
  Profile p = all_cooperate(game.player_count());
  p[0] = Strategy::Defect;  // leader 0 (stake 5) hides among the others
  const double b = 10.0e6;
  EXPECT_NEAR(game.payoff(p, 0), 0.5 * b * 5 / (90.0 + 5.0) - 5.0, 1e-6);
  // The cooperating leader now owns the whole α pot.
  EXPECT_NEAR(game.payoff(p, 1), 0.2 * b * 8 / 8.0 - 16.0, 1e-6);
}

TEST(GameModel, PayoffsVectorMatchesScalar) {
  const AlgorandGame game(base_config(SchemeKind::RoleBased));
  Profile p = all_cooperate(game.player_count());
  p[3] = Strategy::Defect;
  const auto all = game.payoffs(p);
  ASSERT_EQ(all.size(), game.player_count());
  for (ledger::NodeId v = 0; v < game.player_count(); ++v) {
    EXPECT_DOUBLE_EQ(all[v], game.payoff(p, v));
  }
}

TEST(GameModel, RejectsBadConfig) {
  GameConfig config = base_config(SchemeKind::StakeProportional);
  config.bi = -1;
  EXPECT_THROW(AlgorandGame{config}, std::invalid_argument);
  config = base_config(SchemeKind::StakeProportional);
  config.committee_threshold = 0.4;
  EXPECT_THROW(AlgorandGame{config}, std::invalid_argument);
  config = base_config(SchemeKind::StakeProportional);
  config.sync_set = {true};  // wrong size
  EXPECT_THROW(AlgorandGame{config}, std::invalid_argument);
}

TEST(GameModel, ProfileSizeChecked) {
  const AlgorandGame game(base_config(SchemeKind::StakeProportional));
  EXPECT_THROW(game.payoff(Profile(2, Strategy::Cooperate), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::game
