// PartialCodec — the serialization seam of the shard-partial workflow
// (DESIGN.md §9).
//
// Everything the sharded figures persist — the PartialEnvelope, the
// ScalarBanks, all three experiment payloads (defection / reward /
// strategic) and the bench-level shard documents that wrap them — is
// built on the deterministic util::json value tree (insertion-ordered
// members, %.17g doubles). A PartialCodec turns one such document into
// bytes and back:
//
//   JsonCodec    the historical format: doc.dump() + "\n". Text,
//                greppable, ~20 bytes per double.
//   BinaryCodec  a framed columnar encoding (util/framed_io): magic
//                "RSBP" + version, a "columns" section holding every
//                all-finite numeric array as a raw f64 column, and a
//                "tree" section with the tagged structure referencing
//                the columns by index. ~8 bytes per sample — the format
//                that makes 10k-run exact-mode shards practical.
//
// The codec contract, enforced by tests/prop/prop_partial_codec.cpp:
// for every document D, decode(encode(D)) dumps byte-identically to
// parse(D.dump()) — i.e. the binary path is indistinguishable from the
// JSON path to every consumer (finalize, merge, byte-diff CI). Malformed
// binary input — truncation at any byte, trailing bytes, corrupt
// sections, unknown tags, out-of-range column references — throws
// util::framed::Error naming the origin and offset; it never yields a
// wrong document silently.
//
// Format detection (detect_partial_format) is by leading bytes: the
// binary magic wins, otherwise the first non-whitespace byte must open a
// JSON document. merge_partials and --partial-in resume reads always
// auto-detect, so shards of mixed formats interoperate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace roleshare::sim {

enum class PartialFormat : std::uint8_t { Json, Binary };

/// "json" / "bin" — the --format knob vocabulary and the BENCH_*.json
/// tag. Both directions fail loudly on unknown input.
const char* to_string(PartialFormat format);
PartialFormat parse_partial_format(std::string_view name);

class PartialCodec {
 public:
  virtual ~PartialCodec() = default;

  virtual PartialFormat format() const = 0;

  /// Serializes one shard-partial document.
  virtual std::string encode(const util::json::Value& doc) const = 0;

  /// Inverts encode. `origin` names the byte source (a file path) in
  /// every error. Throws util::framed::Error (binary) or
  /// std::invalid_argument (JSON) on malformed input.
  virtual util::json::Value decode(std::string_view bytes,
                                   std::string_view origin) const = 0;
};

/// The process-wide codec instances (stateless).
const PartialCodec& partial_codec(PartialFormat format);

/// Sniffs the format from the leading bytes; throws std::invalid_argument
/// naming `origin` when the bytes open neither a binary frame nor a JSON
/// document.
PartialFormat detect_partial_format(std::string_view bytes,
                                    std::string_view origin);

/// detect + decode — the universal read path (--partial-in, the
/// merge_partials shard arguments, result-store payloads).
util::json::Value decode_partial_document(std::string_view bytes,
                                          std::string_view origin);

/// Encodes an ExperimentPartial (or anything with to_json) directly.
template <typename PartialT>
std::string encode_partial(const PartialT& partial, PartialFormat format) {
  return partial_codec(format).encode(partial.to_json());
}

/// Decodes an ExperimentPartial of either format; the payload's
/// cross-kind guard still applies.
template <typename PartialT>
PartialT decode_partial(std::string_view bytes, std::string_view origin) {
  return PartialT::from_json(decode_partial_document(bytes, origin));
}

}  // namespace roleshare::sim
