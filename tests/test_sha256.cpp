#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/hex.hpp"

namespace roleshare::crypto {
namespace {

std::string hex_of(const Digest& d) { return util::to_hex(d); }

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_of(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_of(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(hex_of(ctx.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 ctx;
  ctx.update("hello ");
  ctx.update("wor");
  ctx.update("ld");
  EXPECT_EQ(ctx.finalize(), sha256("hello world"));
}

TEST(Sha256, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding boundary.
  for (const std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 128u}) {
    const std::string msg(len, 'x');
    Sha256 incremental;
    for (const char c : msg)
      incremental.update(std::string_view(&c, 1));
    EXPECT_EQ(incremental.finalize(), sha256(msg)) << "len=" << len;
  }
}

TEST(Sha256, UpdateU64IsLittleEndian) {
  Sha256 a;
  a.update_u64(0x0102030405060708ULL);
  const std::uint8_t bytes[8] = {8, 7, 6, 5, 4, 3, 2, 1};
  Sha256 b;
  b.update(std::span<const std::uint8_t>(bytes, 8));
  EXPECT_EQ(a.finalize(), b.finalize());
}

TEST(Sha256, ReuseAfterFinalizeThrows) {
  Sha256 ctx;
  ctx.update("x");
  (void)ctx.finalize();
  EXPECT_THROW(ctx.update("y"), std::invalid_argument);
  EXPECT_THROW(ctx.finalize(), std::invalid_argument);
}

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(sha256("a"), sha256("b"));
  EXPECT_NE(sha256(""), sha256(std::string(1, '\0')));
}

TEST(Sha256Fixed, MatchesStreamingAtEveryLength) {
  // Every legal message length, covering the one-block/two-block padding
  // boundary (55/56 bytes) and the 119-byte maximum.
  for (std::size_t len = 0; len <= 119; ++len) {
    Sha256Fixed fixed(len);
    std::vector<std::uint8_t> message(len);
    for (std::size_t i = 0; i < len; ++i)
      message[i] = static_cast<std::uint8_t>(0x40 + i);
    fixed.write(0, message.data(), message.size());
    EXPECT_EQ(fixed.digest(), sha256(message)) << "len=" << len;
  }
}

TEST(Sha256Fixed, RewritingSlotBytesRehashesCorrectly) {
  Sha256Fixed fixed(64);
  std::vector<std::uint8_t> message(64, 0xaa);
  fixed.write(0, message.data(), message.size());
  EXPECT_EQ(fixed.digest(), sha256(message));
  // Overwrite a middle window and re-digest: the template is reusable.
  for (std::size_t i = 16; i < 48; ++i) message[i] = 0x55;
  fixed.write(16, message.data() + 16, 32);
  EXPECT_EQ(fixed.digest(), sha256(message));
}

TEST(Sha256Fixed, RejectsOversizedMessageAndOutOfBoundsWrite) {
  EXPECT_THROW(Sha256Fixed(120), std::invalid_argument);
  Sha256Fixed fixed(16);
  const std::uint8_t byte = 0;
  EXPECT_THROW(fixed.write(16, &byte, 1), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::crypto
