// Shard orchestration CLI (DESIGN.md §11): turns any shard-capable
// figure bench into a supervised multi-process job — one coordinator,
// --workers forked worker agents, a Unix-socket wire protocol — whose
// --series-out is byte-identical to the single-process bench's.
//
//   $ ./orchestrate --bench=fig6_bi_distributions --workers=3 \
//       --window=8 --series-out=fig6_orch.json --spool-dir=fig6.orch \
//       --nodes=2000 --runs=16 --rounds=4
//
// The bench's own knobs (--nodes/--runs/--rounds/--threads/--agg/...)
// pass through verbatim: coordinator and every worker parse the SAME
// argv through the same bench/bench_drivers.hpp factory, and each
// worker's HELLO echoes the resulting header for the coordinator to
// verify byte-for-byte — config drift aborts the job instead of
// corrupting it.
//
// Failure-path knobs (all deterministic, all first-class tested):
//   --kill-worker-after=N  worker 0 _exit(9)s after executing N runs,
//                          before the message it owes. Mid-window: the
//                          replacement resumes from the checkpoint.
//                          At a window boundary: the finished partial
//                          was already published, so the retry is a
//                          result-store cache hit (needs --store).
//   --drop-assignment=N    worker 0 swallows its first N ASSIGNs;
//                          --lease-seconds must notice and re-issue.
//   --reissue=W            after window W folds, assign it once more —
//                          the duplicate result is discarded and, with
//                          --store, served from cache not recomputed.
//   --lease-seconds=S      re-issue a window leased S seconds without
//                          progress (straggler keeps running; first
//                          finished attempt wins).
//   --max-attempts=N       abort after N failed attempts of one window.
//
// Worker-level knobs forwarded into run_sharded_panels: --window (runs
// per assignment), --checkpoint-every, --format={json,bin}, --store=DIR.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

#include "bench_drivers.hpp"
#include "bench_util.hpp"
#include "orch/coordinator.hpp"
#include "orch/spawn.hpp"
#include "orch/worker.hpp"

using namespace roleshare;

namespace {

int run(int argc, char** argv) {
  const std::string bench_name = bench::arg_string(argc, argv, "bench", "");
  if (bench_name.empty())
    throw std::invalid_argument(
        std::string("--bench is required — one of: ") +
        bench::kShardableBenchNames);
  const auto workers =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "workers", 3));
  const long long window_arg = bench::arg_int(argc, argv, "window", 0);
  const double lease_seconds =
      bench::arg_real(argc, argv, "lease-seconds", 0.0);
  const auto max_attempts =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "max-attempts", 5));
  const auto kill_after = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "kill-worker-after", 0));
  const auto drop_assignments = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "drop-assignment", 0));
  const long long reissue = bench::arg_int(argc, argv, "reissue", -1);
  const auto checkpoint_every = static_cast<std::size_t>(
      bench::arg_int(argc, argv, "checkpoint-every", 0));
  const std::string series_out =
      bench::arg_string(argc, argv, "series-out", "");
  const std::string store_dir = bench::arg_string(argc, argv, "store", "");
  const sim::PartialFormat format = bench::arg_partial_format(argc, argv);
  const bool verbose = bench::arg_int(argc, argv, "verbose", 0) != 0;
  std::string spool_dir = bench::arg_string(argc, argv, "spool-dir", "");
  if (spool_dir.empty()) spool_dir = bench_name + ".orch";
  std::filesystem::create_directories(spool_dir);
  // Socket paths have a hard kernel cap (~107 bytes) — the spool dir
  // must stay short, so fail on it before bind() produces a worse error.
  const std::string socket_path =
      bench::arg_string(argc, argv, "socket", spool_dir + "/orch.sock");

  bench::ShardableBench shardable =
      bench::make_shardable_bench(bench_name, argc, argv);

  orch::JobConfig job;
  job.runs = shardable.runs;
  job.window =
      window_arg > 0
          ? static_cast<std::size_t>(window_arg)
          : std::max<std::size_t>(
                1, (shardable.runs + 2 * workers - 1) / (2 * workers));
  job.workers = workers;
  job.socket_path = socket_path;
  job.spool_dir = spool_dir;
  job.lease_seconds = lease_seconds;
  job.max_attempts = max_attempts;
  job.reissue_window = reissue;
  job.verbose = verbose;

  bench::print_header("Orchestrate",
                      "coordinator + worker agents over one bench");
  std::printf("bench=%s runs=%zu window=%zu workers=%zu lease=%.1fs "
              "max-attempts=%zu%s%s%s store=%s format=%s\n",
              bench_name.c_str(), job.runs, job.window, job.workers,
              job.lease_seconds, job.max_attempts,
              kill_after > 0 ? " KILL-INJECTION" : "",
              drop_assignments > 0 ? " DROP-INJECTION" : "",
              reissue >= 0 ? " REISSUE-INJECTION" : "",
              store_dir.empty() ? "(none)" : store_dir.c_str(),
              sim::to_string(format));

  // Worker agents are forked, not exec'd: the child re-derives the
  // bench from THIS argv (same factory, same bytes) and speaks the wire
  // protocol back to us. Fault injection targets worker 0 only, so a
  // respawned replacement completes the job instead of crash-looping.
  const orch::SpawnWorkerFn spawn_worker = [&](std::uint32_t worker_id) {
    return orch::spawn_child([&, worker_id]() {
      bench::ShardableBench mine =
          bench::make_shardable_bench(bench_name, argc, argv);
      orch::WorkerOptions options;
      options.socket_path = socket_path;
      options.worker_id = worker_id;
      options.verbose = verbose;
      if (worker_id == 0) {
        options.kill_after_runs = kill_after;
        options.drop_assignments = drop_assignments;
      }
      orch::WindowRunner runner;
      runner.config_echo = mine.config_echo;
      runner.run = [&](const orch::WindowAssignment& assignment,
                       std::size_t stop_after,
                       const std::function<void(std::size_t)>& on_checkpoint) {
        bench::ShardKnobs knobs;
        knobs.runs = mine.runs;
        knobs.shard = sim::RunShard{assignment.run_begin, assignment.run_end};
        knobs.partial_out = assignment.spool_path;
        knobs.partial_in = assignment.resume_path;
        knobs.checkpoint_every = checkpoint_every;
        knobs.stop_after = stop_after;
        knobs.format = format;
        knobs.store_dir = store_dir;
        knobs.on_checkpoint = on_checkpoint;
        return mine.run_window(knobs);
      };
      return orch::run_worker(options, runner);
    });
  };

  orch::JobCallbacks callbacks;
  callbacks.config_echo = shardable.config_echo;
  callbacks.fold = shardable.fold;
  callbacks.finalize = [&]() {
    if (series_out.empty()) return;
    shardable.write_series(series_out);
    std::printf("[series] wrote %s\n", series_out.c_str());
  };

  const bench::WallTimer timer;
  const orch::JobStats stats =
      orch::run_coordinator(job, callbacks, spawn_worker);

  std::printf("[orchestrate] done: windows=%zu folded=%zu retries=%zu "
              "store_hits=%zu worker_deaths=%zu respawns=%zu "
              "duplicates=%zu checkpoints=%zu\n",
              stats.windows, stats.folded, stats.retries, stats.store_hits,
              stats.worker_deaths, stats.respawns, stats.duplicate_results,
              stats.checkpoints);
  bench::emit_json(
      "orchestrate_" + bench_name,
      {{"runs", static_cast<double>(job.runs)},
       {"window", static_cast<double>(job.window)},
       {"workers", static_cast<double>(job.workers)},
       {"windows", static_cast<double>(stats.windows)},
       {"retries", static_cast<double>(stats.retries)},
       {"store_hits", static_cast<double>(stats.store_hits)},
       {"worker_deaths", static_cast<double>(stats.worker_deaths)},
       {"respawns", static_cast<double>(stats.respawns)},
       {"duplicate_results", static_cast<double>(stats.duplicate_results)},
       {"checkpoints", static_cast<double>(stats.checkpoints)},
       {"wall_ms", timer.elapsed_ms()}});
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "orchestrate: %s\n", e.what());
    return 1;
  }
}
