// Reusable reduction hooks for the experiment runner.
//
// Every figure in the paper is a Monte-Carlo aggregate over independent
// runs: per-round series reduced by the 20%-trimmed mean (§III-C) or by
// percentiles. PerRoundSamples is the shared sample matrix behind
// OutcomeMetrics and the bench tables; it keeps samples in insertion
// order, so merging per-run partials in run-index order reproduces a
// serial execution bit for bit.
//
// Empty-round semantics: a round with zero recorded samples — reachable
// once a scenario records conditionally, e.g. churn emptying a cohort —
// reduces to quiet NaN in every *_series method, deterministically.
// util::stats is never invoked on an empty vector (percentile would
// throw; mean / trimmed_mean would silently fabricate 0.0, which is
// indistinguishable from a real zero). Consumers must skip or map the
// NaN explicitly (bench::emit_json writes it as JSON null).
#pragma once

#include <cstddef>
#include <vector>

namespace roleshare::sim {

class PerRoundSamples {
 public:
  explicit PerRoundSamples(std::size_t rounds);

  std::size_t rounds() const { return samples_.size(); }
  std::size_t count(std::size_t round_index) const;
  /// True when round_index has no samples (its series entries are NaN).
  bool empty_round(std::size_t round_index) const;
  const std::vector<double>& samples(std::size_t round_index) const;

  void record(std::size_t round_index, double value);

  /// Appends every sample of `other` (same round count required) in round
  /// order — the run-index-ordered reduction step. Per-round counts may
  /// differ between the two operands (runs of different lengths).
  void merge(const PerRoundSamples& other);

  /// Per-round trimmed mean (the paper's §III-C reduction); NaN for
  /// empty rounds.
  std::vector<double> trimmed_mean_series(double trim_fraction) const;

  /// Per-round arithmetic mean; NaN for empty rounds.
  std::vector<double> mean_series() const;

  /// Per-round linear-interpolated percentile, p in [0, 100]; NaN for
  /// empty rounds.
  std::vector<double> percentile_series(double p) const;

 private:
  std::vector<std::vector<double>> samples_;
};

}  // namespace roleshare::sim
