#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/require.hpp"

namespace roleshare::util {

std::size_t ThreadPool::resolve_thread_count(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  RS_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RS_REQUIRE(!stopping_, "submit on a stopping pool");
    queue_.push_back(std::move(task));
  }
  work_ready_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t InnerExecutor::chunk_length(std::size_t n) {
  if (n == 0) return 0;
  // Chunk size from n alone: aim for kTargetChunks chunks but keep every
  // chunk at least kMinChunk indices (the last may be shorter). This is
  // the canonical formula; chunk_count derives from it.
  const std::size_t target = (n + kTargetChunks - 1) / kTargetChunks;
  return std::max(kMinChunk, target);
}

std::size_t InnerExecutor::chunk_count(std::size_t n) {
  if (n == 0) return 0;
  const std::size_t chunk = chunk_length(n);
  return (n + chunk - 1) / chunk;
}

void InnerExecutor::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& body) const {
  if (n == 0) return;
  if (!parallel()) {
    // Inline, but with the pool's error semantics: every index attempted,
    // lowest failing index's exception rethrown.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  pool_->parallel_for_indexed(n, body);
}

void InnerExecutor::for_each_chunk(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body)
    const {
  if (n == 0) return;
  const std::size_t chunk = chunk_length(n);
  const auto run_chunk = [&](std::size_t c) {
    const std::size_t begin = c * chunk;
    body(c, begin, std::min(n, begin + chunk));
  };
  for_each_index(chunk_count(n), run_chunk);
}

namespace {

/// Shared state of one parallel_for_indexed call, allocated on the
/// caller's stack. Workers capture a single pointer to it, which fits
/// std::function's small-buffer storage — a steady-state round performs
/// no heap allocation on this path. The error of the *lowest* failing
/// index is kept (first_error_index guards the update), matching the
/// previous per-index error array without its O(n) allocation.
struct ParallelForState {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> live{0};
  std::mutex done_mutex;
  std::condition_variable done;
  std::mutex error_mutex;
  std::size_t first_error_index = ~std::size_t{0};
  std::exception_ptr first_error;

  void record_error(std::size_t index) {
    std::lock_guard<std::mutex> lock(error_mutex);
    if (index < first_error_index) {
      first_error_index = index;
      first_error = std::current_exception();
    }
  }

  void claim_loop() {
    for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
      try {
        (*body)(i);
      } catch (...) {
        record_error(i);
      }
    }
    if (live.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done.notify_all();
    }
  }
};

}  // namespace

void ThreadPool::parallel_for_indexed(
    std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  ParallelForState state;
  state.n = n;
  state.body = &body;
  const std::size_t fan_out = std::min(workers_.size(), n);
  if (fan_out <= 1) {
    // Inline serial path — same error semantics as the parallel one:
    // every index attempted, lowest failing index's exception rethrown.
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        state.record_error(i);
      }
    }
  } else {
    state.live.store(fan_out);
    for (std::size_t w = 0; w < fan_out; ++w)
      submit([s = &state] { s->claim_loop(); });
    std::unique_lock<std::mutex> lock(state.done_mutex);
    state.done.wait(lock, [&] { return state.live.load() == 0; });
  }
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace roleshare::util
