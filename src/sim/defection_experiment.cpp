#include "sim/defection_experiment.hpp"

#include <algorithm>
#include <optional>

#include "sim/round_engine.hpp"
#include "util/require.hpp"

namespace roleshare::sim {

namespace {

/// What one run contributes to the aggregate: per-round outcome
/// percentages plus the liveness flag. Small and trivially movable so the
/// thread-pool fan-out stays cheap.
struct DefectionRun {
  struct RoundFractions {
    double final_pct = 0.0;
    double tentative_pct = 0.0;
    double none_pct = 0.0;
    double live = 0.0;      // live-node count this round
    double coop_pct = 0.0;  // % of live nodes playing Cooperate
  };
  std::vector<RoundFractions> rounds;
  bool progress = false;
};

DefectionRun execute_run(const DefectionExperimentConfig& config,
                         std::uint64_t run_seed,
                         util::ThreadPool* inner_pool) {
  NetworkConfig net_config = config.network;
  net_config.seed = run_seed;
  Network network(net_config);

  consensus::ConsensusParams params = config.params;
  if (config.scale_params_to_stake) {
    params = consensus::ConsensusParams::scaled_for(
        network.accounts().total_stake());
    params.step_threshold = config.params.step_threshold;
    params.final_threshold = config.params.final_threshold;
    params.max_binary_iterations = config.params.max_binary_iterations;
    params.proposal_timeout_ms = config.params.proposal_timeout_ms;
    params.step_timeout_ms = config.params.step_timeout_ms;
  }

  RoundEngine engine(network, params, inner_pool);
  // The policy layer only engages when it changes anything; a disabled
  // policy keeps the run bit-identical to the pre-policy experiment.
  std::optional<ScenarioPolicy> policy;
  if (config.policy.enabled()) {
    ScenarioPolicyConfig policy_config = config.policy;
    // Adaptive candidates must best-respond in the game this run's
    // consensus actually plays.
    policy_config.committee_threshold = params.step_threshold;
    policy.emplace(policy_config, network);
  }

  DefectionRun run;
  run.rounds.reserve(config.rounds);
  RoundResult last;
  for (std::size_t r = 0; r < config.rounds; ++r) {
    if (policy)
      policy->begin_round(r, r > 0 ? &last : nullptr, engine.executor());
    RoundResult result = engine.run_round();
    std::size_t coop = 0;
    const auto& strategies = network.strategies();
    for (std::size_t v = 0; v < strategies.size(); ++v) {
      if (network.live(static_cast<ledger::NodeId>(v)) &&
          strategies[v] == game::Strategy::Cooperate)
        ++coop;
    }
    run.rounds.push_back({result.final_fraction * 100.0,
                          result.tentative_fraction * 100.0,
                          result.none_fraction * 100.0,
                          static_cast<double>(result.live_count),
                          100.0 * static_cast<double>(coop) /
                              static_cast<double>(result.live_count)});
    run.progress = run.progress || result.non_empty_block;
    last = std::move(result);
  }
  return run;
}

}  // namespace

DefectionPayload::DefectionPayload(std::size_t rounds, AggBackend backend,
                                   const StreamingAggConfig& streaming)
    : metrics_(rounds, backend, streaming),
      live_(make_accumulator(backend, rounds, streaming)),
      coop_(make_accumulator(backend, rounds, streaming)) {}

DefectionPayload::DefectionPayload(OutcomeMetrics metrics,
                                   std::unique_ptr<RoundAccumulator> live,
                                   std::unique_ptr<RoundAccumulator> coop)
    : metrics_(std::move(metrics)),
      live_(std::move(live)),
      coop_(std::move(coop)) {}

void DefectionPayload::record_round(std::size_t round_index, double final_pct,
                                    double tentative_pct, double none_pct,
                                    double live, double coop_pct) {
  metrics_.record(round_index, final_pct, tentative_pct, none_pct);
  live_->record(round_index, live);
  coop_->record(round_index, coop_pct);
  const auto live_count = static_cast<std::size_t>(live);
  min_live_ = any_live_ ? std::min(min_live_, live_count) : live_count;
  max_live_ = any_live_ ? std::max(max_live_, live_count) : live_count;
  any_live_ = true;
}

void DefectionPayload::record_run_progress(bool progress) {
  if (progress) ++runs_with_progress_;
}

void DefectionPayload::merge(const DefectionPayload& next) {
  metrics_.merge(next.metrics_);
  live_->merge(*next.live_);
  coop_->merge(*next.coop_);
  runs_with_progress_ += next.runs_with_progress_;
  if (next.any_live_) {
    min_live_ = any_live_ ? std::min(min_live_, next.min_live_)
                          : next.min_live_;
    max_live_ = any_live_ ? std::max(max_live_, next.max_live_)
                          : next.max_live_;
    any_live_ = true;
  }
}

DefectionSeries DefectionPayload::finalize(const PartialEnvelope& envelope,
                                           double trim_fraction) const {
  DefectionSeries series;
  series.rounds = metrics_.aggregate(trim_fraction);
  series.runs_with_progress = static_cast<double>(runs_with_progress_) /
                              static_cast<double>(envelope.runs_executed());
  series.live_series = live_->mean_series();
  series.cooperation_series = coop_->mean_series();
  series.min_live = min_live_;
  series.max_live = max_live_;
  series.accumulator_bytes = accumulator_bytes();
  return series;
}

std::size_t DefectionPayload::accumulator_bytes() const {
  return metrics_.memory_bytes() + live_->memory_bytes() +
         coop_->memory_bytes();
}

util::json::Value DefectionPayload::to_json() const {
  util::json::Value v = util::json::Value::object();
  v.set("metrics", metrics_.to_json());
  v.set("live", live_->to_json());
  v.set("coop", coop_->to_json());
  v.set("runs_with_progress", runs_with_progress_);
  v.set("any_live", any_live_);
  v.set("min_live", min_live_);
  v.set("max_live", max_live_);
  return v;
}

DefectionPayload DefectionPayload::from_json(const util::json::Value& value,
                                             const PartialEnvelope& envelope) {
  DefectionPayload p(OutcomeMetrics::from_json(value.at("metrics")),
                     accumulator_from_json(value.at("live")),
                     accumulator_from_json(value.at("coop")));
  RS_REQUIRE(p.metrics_.backend() == envelope.backend &&
                 p.live_->backend() == envelope.backend &&
                 p.coop_->backend() == envelope.backend,
             "partial JSON accumulator backends disagree with the envelope");
  RS_REQUIRE(p.metrics_.rounds() == envelope.rounds &&
                 p.live_->rounds() == envelope.rounds &&
                 p.coop_->rounds() == envelope.rounds,
             "partial JSON accumulator round counts disagree with the "
             "envelope");
  p.runs_with_progress_ = value.at("runs_with_progress").as_size();
  p.any_live_ = value.at("any_live").as_bool();
  p.min_live_ = value.at("min_live").as_size();
  p.max_live_ = value.at("max_live").as_size();
  return p;
}

util::json::Value defection_spec_echo(
    const DefectionExperimentConfig& config) {
  using util::json::Value;
  Value v = Value::object();
  v.set("experiment", std::string(DefectionPayload::kKind));
  v.set("network", network_spec_echo(config.network));
  v.set("runs", config.runs);
  v.set("rounds", config.rounds);
  v.set("scale_params_to_stake",
        util::json::Value(config.scale_params_to_stake));
  Value params = Value::object();
  params.set("expected_proposer_stake", config.params.expected_proposer_stake);
  params.set("expected_step_stake", config.params.expected_step_stake);
  params.set("expected_final_stake", config.params.expected_final_stake);
  params.set("step_threshold", config.params.step_threshold);
  params.set("final_threshold", config.params.final_threshold);
  params.set("max_binary_iterations", config.params.max_binary_iterations);
  params.set("proposal_timeout_ms", config.params.proposal_timeout_ms);
  params.set("step_timeout_ms", config.params.step_timeout_ms);
  v.set("params", std::move(params));
  Value policy = Value::object();
  policy.set("kind", std::string(to_string(config.policy.kind)));
  policy.set("defect_at_bottom", config.policy.defect_at_bottom);
  policy.set("defect_at_top", config.policy.defect_at_top);
  policy.set("leader_cost", config.policy.costs.leader_cost());
  policy.set("committee_cost", config.policy.costs.committee_cost());
  policy.set("other_cost", config.policy.costs.other_cost());
  policy.set("defection_cost", config.policy.costs.defection_cost());
  policy.set("churn_leave", config.policy.churn.leave_probability);
  policy.set("churn_join", config.policy.churn.join_probability);
  policy.set("churn_min_live", config.policy.churn.min_live);
  v.set("policy", std::move(policy));
  v.set("agg", to_string(config.agg));
  v.set("reservoir_capacity", config.streaming.reservoir_capacity);
  Value grid = Value::array();
  for (const double q : config.streaming.p2_grid) grid.push_back(q);
  v.set("p2_grid", std::move(grid));
  return v;
}

DefectionPartial run_defection_partial(
    const DefectionExperimentConfig& config) {
  const ExperimentSpec spec{config.runs,    config.rounds,
                            config.network.seed, config.threads,
                            config.inner_threads, config.shard};
  validate(spec);
  const ResolvedShard shard = resolve_shard(spec);
  DefectionPartial partial(
      make_envelope(DefectionPayload::kKind,
                    spec_hash_hex(defection_spec_echo(config)), config.agg,
                    config.runs, config.rounds, shard.begin, shard.end),
      DefectionPayload(config.rounds, config.agg, config.streaming));

  run_and_reduce(
      spec,
      [&config](std::size_t, util::Rng& rng, const RunContext& ctx) {
        // The network rebuilds its stream from a scalar seed, so hand it
        // this run's seed material (== root.split(run)).
        return execute_run(config, rng.seed_material(), ctx.inner_pool);
      },
      [&](std::size_t, DefectionRun run) {
        for (std::size_t r = 0; r < run.rounds.size(); ++r) {
          partial.payload().record_round(
              r, run.rounds[r].final_pct, run.rounds[r].tentative_pct,
              run.rounds[r].none_pct, run.rounds[r].live,
              run.rounds[r].coop_pct);
        }
        partial.payload().record_run_progress(run.progress);
      });
  return partial;
}

DefectionSeries run_defection_experiment(
    const DefectionExperimentConfig& config) {
  return run_defection_partial(config).finalize(config.trim_fraction);
}

}  // namespace roleshare::sim
