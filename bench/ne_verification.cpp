// E8 — Equilibrium structure (Lemmas 1-2, Theorems 1-3) verified
// constructively on sampled game instances: exhaustive unilateral-deviation
// scans, not trust in the closed-form bounds.
#include <cstdio>

#include "bench_util.hpp"
#include "econ/optimizer.hpp"
#include "game/best_response.hpp"
#include "game/equilibrium.hpp"
#include "sim/experiment_runner.hpp"
#include "util/distributions.hpp"

using namespace roleshare;

namespace {

/// Per-game verification verdicts, reduced by summation across games.
struct GameVerdicts {
  bool lemma1 = false;
  bool thm1 = false;
  bool thm2 = false;
  bool feasible = false;
  bool thm3 = false;
  bool thm3_below_fails = false;
  bool brd_fixpoint = false;
};

// Samples a role snapshot: a few leaders/committee members, many others.
econ::RoleSnapshot sample_snapshot(util::Rng& rng, std::size_t n) {
  std::vector<consensus::Role> roles(n, consensus::Role::Other);
  std::vector<std::int64_t> stakes(n);
  const util::UniformStake dist(1, 50);
  for (auto& s : stakes) s = dist.sample(rng);
  const std::size_t leaders = 2 + static_cast<std::size_t>(rng.uniform_int(0, 2));
  const std::size_t committee =
      5 + static_cast<std::size_t>(rng.uniform_int(0, 5));
  const auto picks = rng.sample_without_replacement(n, leaders + committee);
  for (std::size_t i = 0; i < picks.size(); ++i)
    roles[picks[i]] =
        i < leaders ? consensus::Role::Leader : consensus::Role::Committee;
  return econ::RoleSnapshot(std::move(roles), std::move(stakes));
}

}  // namespace

int main(int argc, char** argv) {
  const auto games =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "games", 25));
  const auto players =
      static_cast<std::size_t>(bench::arg_int(argc, argv, "players", 60));
  const std::size_t threads = bench::arg_threads(argc, argv);

  bench::print_header("NE verification",
                      "Lemma 1, Theorems 1-3 on sampled games");
  std::printf("games=%zu players=%zu threads=%zu stakes=U(1,50)\n\n", games,
              players, threads);

  const econ::CostModel costs;
  std::size_t lemma1_ok = 0, thm1_ok = 0, thm2_ok = 0, thm3_ok = 0,
              thm3_below_fails = 0, brd_fixpoint = 0, feasible_games = 0;
  const bench::WallTimer timer;

  // Each sampled game is an independent "run" of the shared engine: game g
  // draws from root.split(g), so the set of verified instances does not
  // depend on thread count.
  const sim::ExperimentSpec spec{games, 1, 99, threads};
  sim::run_and_reduce(
      spec,
      [&](std::size_t, util::Rng& rng) {
        GameVerdicts verdicts;
        econ::RoleSnapshot snap = sample_snapshot(rng, players);

        // --- G_Al (stake-proportional), Theorems 1-2 + Lemma 1.
        const game::GameConfig gal{snap,
                                   costs,
                                   game::SchemeKind::StakeProportional,
                                   20e6,
                                   econ::RewardSplit(0.02, 0.03),
                                   {},
                                   0.685};
        const game::AlgorandGame game_al(gal);
        util::Rng lemma_rng = rng.split("lemma1");
        verdicts.lemma1 = game::verify_lemma1(game_al, lemma_rng, 8).holds;
        verdicts.thm1 = game::verify_theorem1(game_al).holds;
        verdicts.thm2 = game::verify_theorem2(game_al).holds;

        // --- G_Al+ (role-based), Theorem 3 with Y = all Others.
        std::vector<bool> sync_set(snap.node_count(), false);
        for (std::size_t v = 0; v < snap.node_count(); ++v)
          if (snap.role(static_cast<ledger::NodeId>(v)) ==
              consensus::Role::Other)
            sync_set[v] = true;

        const econ::RewardOptimizer optimizer;
        const econ::OptimizerResult opt = optimizer.optimize(snap, costs);
        if (!opt.feasible) return verdicts;
        verdicts.feasible = true;

        const game::GameConfig galplus{snap,
                                       costs,
                                       game::SchemeKind::RoleBased,
                                       opt.min_bi,
                                       opt.split,
                                       sync_set,
                                       0.685};
        const game::AlgorandGame game_plus(galplus);
        verdicts.thm3 = game::verify_theorem3(game_plus).holds;

        game::GameConfig starved = galplus;
        starved.bi = opt.min_bi * 0.2;
        const game::AlgorandGame game_starved(starved);
        verdicts.thm3_below_fails =
            !game::verify_theorem3(game_starved).holds;

        // Best-response dynamics from the Theorem-3 profile: must be a
        // fixpoint under the optimizer's B_i.
        const game::Profile start = game::theorem3_profile(game_plus);
        const game::DynamicsResult dyn =
            game::best_response_dynamics(game_plus, start, 10);
        verdicts.brd_fixpoint = dyn.converged && dyn.total_moves == 0;
        return verdicts;
      },
      [&](std::size_t, GameVerdicts v) {
        lemma1_ok += v.lemma1 ? 1 : 0;
        thm1_ok += v.thm1 ? 1 : 0;
        thm2_ok += v.thm2 ? 1 : 0;
        feasible_games += v.feasible ? 1 : 0;
        thm3_ok += v.thm3 ? 1 : 0;
        thm3_below_fails += v.thm3_below_fails ? 1 : 0;
        brd_fixpoint += v.brd_fixpoint ? 1 : 0;
      });

  std::printf("%-58s %zu/%zu\n", "Lemma 1 (Offline dominated by Defect):",
              lemma1_ok, games);
  std::printf("%-58s %zu/%zu\n", "Theorem 1 (All-D is a NE of G_Al):",
              thm1_ok, games);
  std::printf("%-58s %zu/%zu\n", "Theorem 2 (All-C is NOT a NE of G_Al):",
              thm2_ok, games);
  std::printf("%-58s %zu/%zu\n",
              "Theorem 3 (profile is NE at Algorithm-1 B_i):", thm3_ok,
              feasible_games);
  std::printf("%-58s %zu/%zu\n",
              "Theorem 3 fails when B_i starved to 20%:", thm3_below_fails,
              feasible_games);
  std::printf("%-58s %zu/%zu\n",
              "Theorem-3 profile is a best-response fixpoint:", brd_fixpoint,
              feasible_games);
  if (feasible_games < games)
    std::printf("(Algorithm 1 infeasible on %zu/%zu sampled games)\n",
                games - feasible_games, games);

  bench::emit_json("ne_verification",
                   {{"games", static_cast<double>(games)},
                    {"players", static_cast<double>(players)},
                    {"threads", static_cast<double>(threads)},
                    {"feasible_games", static_cast<double>(feasible_games)},
                    {"thm3_ok", static_cast<double>(thm3_ok)},
                    {"wall_ms", timer.elapsed_ms()}});
  return 0;
}
