// Walker alias method: O(n) construction, O(1) weighted index draws.
// Used to sample stake-weighted participants (committee members,
// transaction parties) from populations of hundreds of thousands of nodes,
// where per-draw linear scans would dominate the experiment runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace roleshare::util {

class AliasSampler {
 public:
  /// Builds the table for the given non-negative weights (at least one must
  /// be positive).
  explicit AliasSampler(const std::vector<double>& weights);

  std::size_t size() const { return prob_.size(); }

  /// Draws an index with probability weight[i] / sum(weights).
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
};

}  // namespace roleshare::util
