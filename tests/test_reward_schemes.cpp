#include <gtest/gtest.h>

#include "econ/role_based.hpp"
#include "econ/stake_proportional.hpp"

namespace roleshare::econ {
namespace {

using consensus::Role;
using ledger::algos;

RoleSnapshot snapshot() {
  // leaders: stakes {2, 3}; committee: {5, 5}; others: {10, 20, 5}.
  return RoleSnapshot(
      {Role::Leader, Role::Leader, Role::Committee, Role::Committee,
       Role::Other, Role::Other, Role::Other},
      {2, 3, 5, 5, 10, 20, 5});
}

TEST(StakeProportional, BudgetFollowsSchedule) {
  StakeProportionalScheme scheme;
  const RoleSnapshot s = snapshot();
  EXPECT_EQ(scheme.required_budget(1, s), algos(20));
  EXPECT_EQ(scheme.required_budget(500'001, s), algos(26));  // 13M / 500k
}

TEST(StakeProportional, SharesAreStakeProportionalAndRoleBlind) {
  StakeProportionalScheme scheme;
  const RoleSnapshot s = snapshot();  // S_N = 50
  const Payouts p = scheme.distribute(1, s, algos(50));
  // r_i = B_i / S_N = 1 Algo per stake unit, same rate for every role.
  EXPECT_EQ(p.amounts[0], algos(2));
  EXPECT_EQ(p.amounts[2], algos(5));
  EXPECT_EQ(p.amounts[5], algos(20));
  EXPECT_EQ(p.total, algos(50));
}

TEST(StakeProportional, NeverExceedsBudget) {
  StakeProportionalScheme scheme;
  const RoleSnapshot s = snapshot();
  const Payouts p = scheme.distribute(1, s, 997);  // awkward remainder
  EXPECT_LE(p.total, 997);
}

TEST(StakeProportional, ZeroBudgetZeroPayouts) {
  StakeProportionalScheme scheme;
  const Payouts p = scheme.distribute(1, snapshot(), 0);
  EXPECT_EQ(p.total, 0);
  for (const auto amount : p.amounts) EXPECT_EQ(amount, 0);
}

TEST(StakeProportional, ZeroStakeNodeGetsNothing) {
  StakeProportionalScheme scheme;
  const RoleSnapshot s({Role::Other, Role::Other}, {0, 10});
  const Payouts p = scheme.distribute(1, s, algos(10));
  EXPECT_EQ(p.amounts[0], 0);
  EXPECT_EQ(p.amounts[1], algos(10));
}

TEST(RoleBased, FixedSplitDividesPots) {
  const RewardSplit split(0.2, 0.3);  // gamma = 0.5
  RoleBasedScheme scheme(CostModel{}, split);
  const RoleSnapshot s = snapshot();  // S_L=5, S_M=10, S_K=35
  const ledger::MicroAlgos budget = algos(100);
  const Payouts p = scheme.distribute(1, s, budget);

  // Leader pot: 20 Algos over S_L=5 -> 4 Algos per stake unit.
  EXPECT_EQ(p.amounts[0], algos(8));
  EXPECT_EQ(p.amounts[1], algos(12));
  // Committee pot: 30 Algos over S_M=10 -> 3 Algos per stake.
  EXPECT_EQ(p.amounts[2], algos(15));
  EXPECT_EQ(p.amounts[3], algos(15));
  // Gamma pot: 50 Algos over S_K=35.
  EXPECT_NEAR(static_cast<double>(p.amounts[4]),
              static_cast<double>(budget) * 0.5 * 10 / 35, 2.0);
  EXPECT_LE(p.total, budget);
  // All but integer dust is disbursed.
  EXPECT_GT(p.total, budget - 10);
}

TEST(RoleBased, LeaderRatePerStakeExceedsOthersWhenAlphaGenerous) {
  const RewardSplit split(0.3, 0.3);
  RoleBasedScheme scheme(CostModel{}, split);
  const RoleSnapshot s = snapshot();
  const Payouts p = scheme.distribute(1, s, algos(100));
  const double leader_rate = static_cast<double>(p.amounts[0]) / 2.0;
  const double other_rate = static_cast<double>(p.amounts[4]) / 10.0;
  EXPECT_GT(leader_rate, other_rate);
}

TEST(RoleBased, AdaptiveBudgetSatisfiesTheoremThreeBounds) {
  RoleBasedScheme scheme(CostModel{});
  const RoleSnapshot s = snapshot();
  const ledger::MicroAlgos budget = scheme.required_budget(1, s);
  ASSERT_TRUE(scheme.last_feasible());
  ASSERT_GT(budget, 0);
  const BiBounds bounds = compute_bi_bounds(
      scheme.last_split(), BoundInputs::from_snapshot(s), CostModel{});
  ASSERT_TRUE(bounds.feasible);
  EXPECT_GT(static_cast<double>(budget), bounds.required() * 0.999);
}

TEST(RoleBased, DegenerateRoundPaysNothing) {
  RoleBasedScheme scheme(CostModel{});
  const RoleSnapshot no_leader(
      {Role::Committee, Role::Other, Role::Other}, {5, 5, 5});
  EXPECT_EQ(scheme.required_budget(1, no_leader), 0);
  EXPECT_FALSE(scheme.last_feasible());
}

// Regression, shrunk by PropRewards.RoleBasedAdaptiveConservesBudget
// (minimal counterexample: one zero-stake node per role). A role whose
// members all hold zero stake slipped past the empty-role guard and made
// BoundInputs::validate() throw out of required_budget; the scheme must
// treat it as a degenerate round and pay nothing instead.
TEST(RoleBased, ZeroStakeRoleMemberIsDegenerateNotFatal) {
  RoleBasedScheme scheme(CostModel{});
  const RoleSnapshot all_zero(
      {Role::Leader, Role::Committee, Role::Other}, {0, 0, 0});
  EXPECT_EQ(scheme.required_budget(1, all_zero), 0);
  EXPECT_FALSE(scheme.last_feasible());
  // A zero-stake leader alongside funded nodes leaves s*_l = 0 and the
  // Theorem-3 bounds just as undefined.
  const RoleSnapshot mixed(
      {Role::Leader, Role::Leader, Role::Committee, Role::Other},
      {0, 5, 5, 5});
  EXPECT_EQ(scheme.required_budget(1, mixed), 0);
  EXPECT_FALSE(scheme.last_feasible());
}

TEST(RoleBased, MinOtherStakeFilterExcludesSmallHolders) {
  const RewardSplit split(0.2, 0.3);
  RoleBasedScheme scheme(CostModel{}, split, std::int64_t{10});
  const RoleSnapshot s = snapshot();  // others: 10, 20, 5 -> 5 filtered out
  const Payouts p = scheme.distribute(1, s, algos(100));
  EXPECT_EQ(p.amounts[6], 0);  // stake-5 other gets nothing
  // Gamma pot divides over S_K = 30 now.
  EXPECT_NEAR(static_cast<double>(p.amounts[4]),
              static_cast<double>(algos(100)) * 0.5 * 10 / 30, 2.0);
}

TEST(RoleBased, PayoutsSumWithinBudgetAcrossBudgets) {
  const RewardSplit split(0.1, 0.2);
  RoleBasedScheme scheme(CostModel{}, split);
  const RoleSnapshot s = snapshot();
  for (const ledger::MicroAlgos b :
       {ledger::MicroAlgos{1}, ledger::MicroAlgos{999},
        ledger::MicroAlgos{12'345'678}, algos(1000)}) {
    const Payouts p = scheme.distribute(1, s, b);
    ledger::MicroAlgos sum = 0;
    for (const auto amount : p.amounts) sum += amount;
    EXPECT_EQ(sum, p.total);
    EXPECT_LE(sum, b);
  }
}

TEST(RewardSplit, Validation) {
  EXPECT_THROW(RewardSplit(0.0, 0.5), std::invalid_argument);
  EXPECT_THROW(RewardSplit(0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(RewardSplit(-0.1, 0.2), std::invalid_argument);
  const RewardSplit ok(0.02, 0.03);
  EXPECT_NEAR(ok.gamma(), 0.95, 1e-12);
}

TEST(Schemes, Names) {
  EXPECT_EQ(StakeProportionalScheme{}.name(),
            "foundation-stake-proportional");
  EXPECT_EQ(RoleBasedScheme(CostModel{}).name(), "role-based-adaptive");
  EXPECT_EQ(RoleBasedScheme(CostModel{}, RewardSplit(0.1, 0.1)).name(),
            "role-based-fixed-split");
}

}  // namespace
}  // namespace roleshare::econ
