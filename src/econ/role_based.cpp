#include "econ/role_based.hpp"

#include <cmath>

#include "util/require.hpp"

namespace roleshare::econ {

RoleBasedScheme::RoleBasedScheme(CostModel costs,
                                 OptimizerConfig optimizer_config,
                                 std::optional<std::int64_t> min_other_stake)
    : costs_(costs),
      optimizer_(optimizer_config),
      min_other_stake_(min_other_stake) {}

RoleBasedScheme::RoleBasedScheme(CostModel costs, RewardSplit fixed_split,
                                 std::optional<std::int64_t> min_other_stake)
    : costs_(costs),
      optimizer_(),
      fixed_split_(fixed_split),
      min_other_stake_(min_other_stake),
      last_split_(fixed_split) {}

std::string RoleBasedScheme::name() const {
  return fixed_split_ ? "role-based-fixed-split" : "role-based-adaptive";
}

RoleSnapshot RoleBasedScheme::effective_snapshot(
    const RoleSnapshot& snapshot) const {
  if (!min_other_stake_) return snapshot;
  return snapshot.filtered_others(*min_other_stake_);
}

ledger::MicroAlgos RoleBasedScheme::required_budget(
    ledger::Round, const RoleSnapshot& snapshot) {
  const RoleSnapshot effective = effective_snapshot(snapshot);
  // Degenerate round: a role is empty (sortition elected nobody) or holds
  // a zero-stake member, leaving the Theorem-3 bounds undefined (min
  // stake s*_x enters as a divisor — a node with nothing at stake has no
  // deviation cost to bound). Pay nothing rather than divide by zero;
  // min_stake_of() returns 0 for empty roles, so one check covers both.
  if (effective.min_stake_of(consensus::Role::Leader) <= 0 ||
      effective.min_stake_of(consensus::Role::Committee) <= 0 ||
      effective.min_stake_of(consensus::Role::Other) <= 0) {
    last_feasible_ = false;
    return 0;
  }
  const BoundInputs inputs = BoundInputs::from_snapshot(effective);

  if (fixed_split_) {
    const BiBounds bounds = compute_bi_bounds(*fixed_split_, inputs, costs_);
    last_split_ = *fixed_split_;
    last_feasible_ = bounds.feasible;
    if (!bounds.feasible) return 0;
    return static_cast<ledger::MicroAlgos>(std::ceil(bounds.required()) + 1);
  }

  const OptimizerResult result = optimizer_.optimize(inputs, costs_);
  last_split_ = result.split;
  last_feasible_ = result.feasible;
  if (!result.feasible) return 0;
  return static_cast<ledger::MicroAlgos>(std::ceil(result.min_bi));
}

Payouts RoleBasedScheme::distribute(ledger::Round,
                                    const RoleSnapshot& snapshot,
                                    ledger::MicroAlgos budget) {
  RS_REQUIRE(budget >= 0, "budget must be non-negative");
  Payouts out;
  out.amounts.assign(snapshot.node_count(), 0);
  if (budget == 0) return out;

  // The filter only affects who counts toward S_K / receives from the γ
  // pot; leaders and committee always participate.
  const std::int64_t threshold = min_other_stake_.value_or(0);

  std::int64_t sl = 0, sm = 0, sk = 0;
  for (std::size_t v = 0; v < snapshot.node_count(); ++v) {
    const auto id = static_cast<ledger::NodeId>(v);
    switch (snapshot.role(id)) {
      case consensus::Role::Leader:
        sl += snapshot.stake(id);
        break;
      case consensus::Role::Committee:
        sm += snapshot.stake(id);
        break;
      case consensus::Role::Other:
        if (snapshot.stake(id) >= threshold) sk += snapshot.stake(id);
        break;
    }
  }

  const double alpha = last_split_.alpha;
  const double beta = last_split_.beta;
  const double gamma = last_split_.gamma();
  const double b = static_cast<double>(budget);

  for (std::size_t v = 0; v < snapshot.node_count(); ++v) {
    const auto id = static_cast<ledger::NodeId>(v);
    const double stake = static_cast<double>(snapshot.stake(id));
    double share = 0.0;
    switch (snapshot.role(id)) {
      case consensus::Role::Leader:
        if (sl > 0) share = alpha * b * stake / static_cast<double>(sl);
        break;
      case consensus::Role::Committee:
        if (sm > 0) share = beta * b * stake / static_cast<double>(sm);
        break;
      case consensus::Role::Other:
        if (sk > 0 && snapshot.stake(id) >= threshold)
          share = gamma * b * stake / static_cast<double>(sk);
        break;
    }
    const auto amount = static_cast<ledger::MicroAlgos>(std::floor(share));
    out.amounts[v] = amount;
    out.total += amount;
  }
  RS_ENSURE(out.total <= budget, "disbursed more than the budget");
  return out;
}

}  // namespace roleshare::econ
