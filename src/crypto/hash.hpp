// Hash256 — strongly-typed 32-byte hash value used for block hashes, seeds,
// public keys, signatures and VRF outputs.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>

#include "crypto/sha256.hpp"

namespace roleshare::crypto {

class Hash256 {
 public:
  Hash256() = default;  // zero hash
  explicit Hash256(const Digest& digest) : bytes_(digest) {}

  static Hash256 zero() { return Hash256{}; }
  bool is_zero() const;

  const std::array<std::uint8_t, 32>& bytes() const { return bytes_; }
  std::span<const std::uint8_t> span() const { return bytes_; }

  /// First 8 bytes as a big-endian integer — used for priorities.
  std::uint64_t prefix_u64() const;

  /// Maps the hash uniformly to [0, 1) using the 64-bit prefix. This is the
  /// hash-ratio that drives sortition's binomial inversion.
  double ratio() const;

  std::string to_hex() const;
  /// Abbreviated hex (first 8 chars) for logs.
  std::string short_hex() const;

  auto operator<=>(const Hash256&) const = default;

 private:
  std::array<std::uint8_t, 32> bytes_{};
};

/// Domain-separated hash builder: H(tag || parts...). Each part is length-
/// prefixed, so concatenation ambiguity cannot produce collisions.
class HashBuilder {
 public:
  explicit HashBuilder(std::string_view domain_tag);

  HashBuilder& add(std::span<const std::uint8_t> bytes);
  HashBuilder& add(std::string_view text);
  HashBuilder& add(const Hash256& hash);
  HashBuilder& add_u64(std::uint64_t value);
  HashBuilder& add_i64(std::int64_t value);

  Hash256 build();

 private:
  Sha256 ctx_;
};

/// Lays out the exact byte sequence HashBuilder would hash — domain tag
/// plus length-prefixed parts — into a Sha256Fixed template, for hot
/// loops that hash many same-shape messages. Constant parts are written
/// once via add()/add_u64(); variable 32-byte parts reserve a slot whose
/// offset the loop overwrites per item. build_template() seals the
/// layout; digests are bit-identical to the equivalent HashBuilder
/// sequence (same bytes, same SHA-256).
class FixedHasher {
 public:
  explicit FixedHasher(std::string_view domain_tag);

  FixedHasher& add(const Hash256& hash);      // constant hash part
  FixedHasher& add_u64(std::uint64_t value);  // constant integer part

  /// Reserves a variable 32-byte hash part (its length prefix is laid
  /// out here); returns the offset to pass to Sha256Fixed::write.
  std::size_t add_hash_slot();

  /// Seals the layout into a reusable hashing template.
  Sha256Fixed build_template() const;

 private:
  void append_u64_le(std::uint64_t value);
  void append_bytes(const std::uint8_t* bytes, std::size_t count);

  std::array<std::uint8_t, 119> bytes_{};
  std::size_t len_ = 0;
};

/// Overwrites the 32-byte slot at `offset` (from FixedHasher::add_hash_slot)
/// with `hash`'s bytes.
inline void write_hash_slot(Sha256Fixed& fixed, std::size_t offset,
                            const Hash256& hash) {
  fixed.write(offset, hash.bytes().data(), 32);
}

/// Same, from a raw digest.
inline void write_hash_slot(Sha256Fixed& fixed, std::size_t offset,
                            const Digest& digest) {
  fixed.write(offset, digest.data(), 32);
}

/// std::hash support so Hash256 can key unordered containers.
struct Hash256Hasher {
  std::size_t operator()(const Hash256& h) const {
    return static_cast<std::size_t>(h.prefix_u64());
  }
};

}  // namespace roleshare::crypto
