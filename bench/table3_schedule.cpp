// E3 — Table III: the Algorand Foundation's suggested reward distribution
// for the first 12 reward periods (500k blocks each), with the derived
// per-round reward R_i and cumulative emission against the 1.75B ceiling.
#include <cstdio>

#include "bench_util.hpp"
#include "econ/foundation_schedule.hpp"
#include "econ/reward_pool.hpp"

using namespace roleshare;

int main(int, char**) {
  bench::print_header("Table III", "Foundation reward schedule");

  std::printf("%8s %22s %18s %22s\n", "period", "projected (M Algos)",
              "R_i (Algos/round)", "cumulative (M Algos)");
  for (std::size_t p = 1; p <= econ::FoundationSchedule::kPeriods; ++p) {
    const ledger::Round last_round =
        p * econ::FoundationSchedule::kBlocksPerPeriod;
    const ledger::Round first_round =
        (p - 1) * econ::FoundationSchedule::kBlocksPerPeriod + 1;
    std::printf("%8zu %22llu %18.1f %22.1f\n", p,
                static_cast<unsigned long long>(
                    econ::FoundationSchedule::kProjectedMillions[p - 1]),
                ledger::to_algos(
                    econ::FoundationSchedule::reward_for_round(first_round)),
                ledger::to_algos(econ::FoundationSchedule::cumulative_through(
                    last_round)) /
                    1e6);
  }

  // Pool-flow sanity: drive the full 12-period emission through the
  // Foundation pool and confirm the ceiling is never violated.
  econ::FoundationPool pool;
  for (std::size_t p = 1; p <= econ::FoundationSchedule::kPeriods; ++p) {
    pool.inject(econ::FoundationSchedule::period_total(p));
  }
  std::printf("\nPool after 12 periods: emitted %.0fM of %.0fM Algos ceiling"
              " (%.1f%%)\n",
              ledger::to_algos(pool.emitted()) / 1e6,
              ledger::to_algos(pool.ceiling()) / 1e6,
              100.0 * static_cast<double>(pool.emitted()) /
                  static_cast<double>(pool.ceiling()));
  std::printf("Paper check: period 1 pays 20 Algos/round (10M / 500k).\n");
  return 0;
}
