#include "game/best_response.hpp"

#include <array>

#include "util/require.hpp"

namespace roleshare::game {

Strategy best_response(const AlgorandGame& game, const Profile& profile,
                       ledger::NodeId player, double tolerance) {
  RS_REQUIRE(player < game.player_count(), "player id out of range");
  const DeviationScanner scanner(game, profile);
  Strategy best = profile[player];
  double best_payoff = scanner.base_payoff(player);
  // Preference order on ties: keep current, then C, D, O.
  constexpr std::array<Strategy, 3> order = {
      Strategy::Cooperate, Strategy::Defect, Strategy::Offline};
  for (const Strategy alt : order) {
    if (alt == profile[player]) continue;
    const double u = scanner.deviation_payoff(player, alt);
    if (u > best_payoff + tolerance) {
      best = alt;
      best_payoff = u;
    }
  }
  return best;
}

DynamicsResult best_response_dynamics(const AlgorandGame& game,
                                      Profile start, std::size_t max_sweeps,
                                      double tolerance) {
  RS_REQUIRE(start.size() == game.player_count(), "profile size mismatch");
  DynamicsResult result;
  result.profile = std::move(start);
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    ++result.sweeps;
    bool moved = false;
    for (std::size_t i = 0; i < result.profile.size(); ++i) {
      const auto player = static_cast<ledger::NodeId>(i);
      const Strategy br =
          best_response(game, result.profile, player, tolerance);
      if (br != result.profile[i]) {
        result.profile[i] = br;
        moved = true;
        ++result.total_moves;
      }
    }
    if (!moved) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace roleshare::game
