#include "econ/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.hpp"

namespace roleshare::econ {

RewardOptimizer::RewardOptimizer(OptimizerConfig config) : config_(config) {
  RS_REQUIRE(config.margin >= 0.0, "margin must be non-negative");
  RS_REQUIRE(config.min_share > 0.0 && config.min_share < 1e-2,
             "min share in (0, 0.01)");
}

OptimizerResult RewardOptimizer::optimize(const BoundInputs& in,
                                          const CostModel& costs) const {
  in.validate();
  OptimizerResult result;

  // Closed-form pieces (see header): A, B drive the leader/committee
  // bounds, D the online bound, C the feasibility floors' slope in gamma.
  const double a_num = (costs.leader_cost() - costs.defection_cost()) *
                       in.stake_leaders / in.min_stake_leader;
  const double b_num = (costs.committee_cost() - costs.defection_cost()) *
                       in.stake_committee / in.min_stake_committee;
  const double d_num = (costs.other_cost() - costs.defection_cost()) *
                       in.stake_others / in.min_stake_other;
  const double c_slope =
      in.stake_leaders / (in.stake_others + in.min_stake_leader) +
      in.stake_committee / (in.stake_others + in.min_stake_committee);

  // Optimal gamma: crossing of R(gamma) = (A+B)/(1 - gamma(1+C)) with
  // D/gamma; if D == 0 (cooperating as an Other costs no more than
  // defecting) the online bound vanishes and gamma shrinks to the floor.
  double gamma = d_num > 0.0
                     ? d_num / (a_num + b_num + d_num * (1.0 + c_slope))
                     : config_.min_share;
  const double gamma_max = 1.0 / (1.0 + c_slope);
  gamma = std::clamp(gamma, config_.min_share,
                     gamma_max * (1.0 - config_.min_share));

  // Equalizing allocation of the slack above the feasibility floors.
  const double slack = 1.0 - gamma * (1.0 + c_slope);
  RS_ENSURE(slack > 0.0, "gamma clamp must leave slack");
  const double alpha_min =
      in.stake_leaders * gamma / (in.stake_others + in.min_stake_leader);
  const double beta_min =
      in.stake_committee * gamma / (in.stake_others + in.min_stake_committee);
  const double denom = a_num + b_num;
  // Degenerate A = B = 0 (role costs equal defection cost): split evenly.
  // The clamp keeps both alpha and beta strictly above their floors even
  // when only one bound carries weight, preserving Eq-(8)/(9) strictness.
  const double a_share =
      denom > 0.0 ? std::clamp(a_num / denom, 1e-6, 1.0 - 1e-6) : 0.5;
  double alpha = alpha_min + slack * a_share;
  double beta = beta_min + slack * (1.0 - a_share);
  // Keep every share strictly positive.
  alpha = std::max(alpha, config_.min_share);
  beta = std::max(beta, config_.min_share);
  if (alpha + beta >= 1.0 - config_.min_share) {
    const double scale = (1.0 - gamma) / (alpha + beta);
    alpha *= scale;
    beta *= scale;
  }

  result.split = RewardSplit(alpha, beta);
  result.bounds = compute_bi_bounds(result.split, in, costs);
  result.feasible = result.bounds.feasible;
  if (result.feasible) {
    result.min_bi = result.bounds.required() * (1.0 + config_.margin);
  } else {
    result.min_bi = std::numeric_limits<double>::infinity();
  }
  return result;
}

OptimizerResult RewardOptimizer::optimize(const RoleSnapshot& snapshot,
                                          const CostModel& costs) const {
  return optimize(BoundInputs::from_snapshot(snapshot), costs);
}

}  // namespace roleshare::econ
