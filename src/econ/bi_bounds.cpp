#include "econ/bi_bounds.hpp"

#include <algorithm>
#include <limits>

#include "util/require.hpp"

namespace roleshare::econ {

RewardSplit::RewardSplit(double a, double b) : alpha(a), beta(b) {
  RS_REQUIRE(a > 0.0 && b > 0.0, "alpha and beta must be positive");
  RS_REQUIRE(a + b < 1.0, "alpha + beta must leave gamma > 0");
}

BoundInputs BoundInputs::from_snapshot(const RoleSnapshot& snapshot) {
  BoundInputs in;
  in.stake_leaders =
      static_cast<double>(snapshot.stake_of(consensus::Role::Leader));
  in.stake_committee =
      static_cast<double>(snapshot.stake_of(consensus::Role::Committee));
  in.stake_others =
      static_cast<double>(snapshot.stake_of(consensus::Role::Other));
  in.min_stake_leader =
      static_cast<double>(snapshot.min_stake_of(consensus::Role::Leader));
  in.min_stake_committee =
      static_cast<double>(snapshot.min_stake_of(consensus::Role::Committee));
  in.min_stake_other =
      static_cast<double>(snapshot.min_stake_of(consensus::Role::Other));
  return in;
}

void BoundInputs::validate() const {
  RS_REQUIRE(stake_leaders > 0, "S_L > 0");
  RS_REQUIRE(stake_committee > 0, "S_M > 0");
  RS_REQUIRE(stake_others > 0, "S_K > 0");
  RS_REQUIRE(min_stake_leader > 0, "s*_l > 0");
  RS_REQUIRE(min_stake_committee > 0, "s*_m > 0");
  RS_REQUIRE(min_stake_other > 0, "s*_k > 0");
}

BiBounds compute_bi_bounds(const RewardSplit& split, const BoundInputs& in,
                           const CostModel& costs) {
  in.validate();
  const double gamma = split.gamma();
  BiBounds out;

  // Eq (6): a defecting leader would be paid from the γ pot alongside the
  // others (its stake joins S_K), hence the γ/(S_K + s*_l) term.
  const double leader_margin =
      split.alpha / in.stake_leaders -
      gamma / (in.stake_others + in.min_stake_leader);
  // Eq (7): same structure for committee members.
  const double committee_margin =
      split.beta / in.stake_committee -
      gamma / (in.stake_others + in.min_stake_committee);

  out.feasible = leader_margin > 0.0 && committee_margin > 0.0;
  if (!out.feasible) return out;

  out.leader_bound = (costs.leader_cost() - costs.defection_cost()) /
                     (leader_margin * in.min_stake_leader);
  out.committee_bound = (costs.committee_cost() - costs.defection_cost()) /
                        (committee_margin * in.min_stake_committee);
  // Eq (10): an Other node in the strong-synchrony set must prefer
  // γB_i·s/S_K − c_K to −c_so.
  out.online_bound = (costs.other_cost() - costs.defection_cost()) *
                     in.stake_others / (in.min_stake_other * gamma);
  return out;
}

double BiBounds::required() const {
  if (!feasible) return std::numeric_limits<double>::infinity();
  return std::max({leader_bound, committee_bound, online_bound});
}

}  // namespace roleshare::econ
