// The universal experiment-partial layer behind the sharded / checkpointed
// execution of every figure (DESIGN.md §6).
//
// PR 4 gave the Fig-3 defection experiment a mergeable, JSON-serializable
// reduction state (`DefectionPartial`). This header lifts that pattern
// into one template every experiment family shares:
//
//   ExperimentPartial<Payload> = PartialEnvelope + Payload
//
//   PartialEnvelope  the common header every partial carries: experiment
//                    kind, spec hash (a digest of everything in the config
//                    that affects results), accumulator backend, run
//                    counts, and the shard window [run_begin, run_end)
//                    plus the resume cursor (window_end — see below).
//                    All cross-partial compatibility checks live here,
//                    and every failure names both sides.
//   Payload          the experiment-specific mergeable reduction state
//                    (accumulators, scalar banks, counters). Three
//                    payloads exist: DefectionPayload (Fig 3 /
//                    scenario_sweep), RewardPayload (Fig 6/7) and
//                    StrategicPayload (the best-response ensemble).
//
// Checkpoint / resume semantics: a partial covering [run_begin, run_end)
// with run_end < window_end is an *unfinished checkpoint* — the writer
// intended to execute up to window_end but stopped (crash, preemption,
// --stop-after). Resuming means executing [run_end, window_end) in
// sub-windows and merging each in; because exact-backend merges of
// contiguous windows replay a serial execution bit for bit, a
// checkpointed-then-resumed shard is bit-identical to an uninterrupted
// one. merge_partials refuses unfinished checkpoints loudly.
//
// Serialization: envelope, ScalarBank and every payload build one
// deterministic util::json value tree (to_json/from_json below); the
// bytes on disk come from a sim::PartialCodec (partial_codec.hpp) —
// JSON text or the framed binary columnar format, interchangeably and
// bit-identically. Finished windows are additionally cacheable by
// content address in a sim::ResultStore keyed on the spec hash
// (result_store.hpp).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/aggregators.hpp"
#include "util/json.hpp"
#include "util/require.hpp"
#include "util/stats.hpp"

namespace roleshare::sim {

struct NetworkConfig;

/// Canonical JSON echo of a NetworkConfig's result-affecting fields —
/// shared by the defection and strategic spec hashes.
util::json::Value network_spec_echo(const NetworkConfig& config);

/// FNV-1a 64-bit digest of a canonical spec-echo JSON value, as a fixed-
/// width hex string. Every experiment family hashes the full set of
/// config fields that affect its results (seeds, population, policies,
/// economics — never thread counts or shard windows), so two partials
/// merge only when they were produced by the same experiment.
std::string spec_hash_hex(const util::json::Value& spec_echo);

/// The envelope every experiment partial carries. Invariants (validated
/// on construction and deserialization):
///   run_begin < run_end <= window_end <= runs_total, rounds > 0.
struct PartialEnvelope {
  std::string kind;       // "defection" / "reward" / "strategic"
  std::string spec_hash;  // spec_hash_hex of the experiment's config echo
  AggBackend backend = AggBackend::Exact;
  std::size_t runs_total = 0;
  std::size_t rounds = 0;
  std::size_t run_begin = 0;
  /// First run NOT covered yet — the resume cursor. A complete partial
  /// has run_end == window_end.
  std::size_t run_end = 0;
  /// The window this partial intends to cover once complete.
  std::size_t window_end = 0;

  bool complete() const { return run_end == window_end; }
  std::size_t runs_executed() const { return run_end - run_begin; }

  void validate() const;
  /// Extends the intended window (checkpoint writers call this before
  /// serializing a partial that will be resumed later).
  void extend_window(std::size_t target_end);
  /// Throws std::invalid_argument naming both sides unless `next` is the
  /// same experiment (kind, spec hash, backend, shape) and starts exactly
  /// where this partial's coverage ends.
  void check_merge(const PartialEnvelope& next) const;
  /// Folds `next`'s window in after check_merge passed.
  void absorb(const PartialEnvelope& next);

  util::json::Value to_json() const;
  static PartialEnvelope from_json(const util::json::Value& value);
};

/// One shard's window as merge_partials sees it — used by
/// check_shard_tiling to validate a whole shard set before any merge.
struct ShardWindow {
  std::size_t run_begin = 0;
  std::size_t run_end = 0;
  std::size_t window_end = 0;
  std::string label;  // file path or shard name, for diagnostics
};

/// Validates that `windows` (any order) tile [0, runs_total) exactly:
/// no unfinished checkpoints, no overlaps, no gaps, full coverage.
/// Throws std::invalid_argument naming the offending shards. This is the
/// merge_partials pre-flight — merge() would also reject a broken set,
/// but only pairwise and only after work was done.
void check_shard_tiling(std::vector<ShardWindow> windows,
                        std::size_t runs_total);

// ---------------------------------------------------------------------
// ScalarBank — the run-scalar analogue of RoundAccumulator.
//
// Experiments also reduce per-run scalars (total stake, total reward,
// final cooperation) and flat sample streams (every feasible B_i). Under
// the exact backend the bank keeps the raw samples in record order, so a
// merge concatenates and `mean()` / `sum()` replay the exact arithmetic
// a single process performs — bit-identical shard merges. Under the
// streaming backend it keeps a mergeable Welford RunningStats instead:
// O(1) memory, means exact up to Chan-combine rounding.

class ScalarBank {
 public:
  explicit ScalarBank(AggBackend backend);

  AggBackend backend() const { return backend_; }
  std::size_t count() const;

  void record(double value);
  /// Appends `other` after this bank's own samples; throws
  /// std::invalid_argument naming both backends on a mismatch.
  void merge(const ScalarBank& other);

  /// Mean via a sequential Welford replay (exact) or the merged
  /// RunningStats (streaming). NaN when empty.
  double mean() const;
  /// Plain left-to-right sum (exact) or count*mean (streaming). 0 when
  /// empty — callers that divide must use their own run counts.
  double sum() const;

  /// The raw sample stream, record order. Exact backend only — throws
  /// std::logic_error under streaming (the samples were never kept).
  const std::vector<double>& samples() const;

  std::size_t memory_bytes() const;

  util::json::Value to_json() const;
  static ScalarBank from_json(const util::json::Value& value);

 private:
  AggBackend backend_;
  std::vector<double> samples_;   // exact only
  util::RunningStats stats_;      // streaming only
};

// ---------------------------------------------------------------------
// The shared partial template.
//
// A Payload must provide:
//   static constexpr std::string_view kKind;
//   void merge(const Payload& next);              // fold after own samples
//   util::json::Value to_json() const;
//   static Payload from_json(const util::json::Value&,
//                            const PartialEnvelope&);
//   std::size_t accumulator_bytes() const;
//   <Series> finalize(const PartialEnvelope&, ...) const;

template <typename Payload>
class ExperimentPartial {
 public:
  ExperimentPartial(PartialEnvelope envelope, Payload payload)
      : envelope_(std::move(envelope)), payload_(std::move(payload)) {
    RS_REQUIRE(envelope_.kind == Payload::kKind,
               "partial envelope is kind \"" + envelope_.kind +
                   "\" but this experiment expects \"" +
                   std::string(Payload::kKind) + "\"");
    envelope_.validate();
  }

  const PartialEnvelope& envelope() const { return envelope_; }
  Payload& payload() { return payload_; }
  const Payload& payload() const { return payload_; }

  std::size_t run_begin() const { return envelope_.run_begin; }
  std::size_t run_end() const { return envelope_.run_end; }
  std::size_t window_end() const { return envelope_.window_end; }
  std::size_t runs_total() const { return envelope_.runs_total; }
  std::size_t rounds() const { return envelope_.rounds; }
  AggBackend backend() const { return envelope_.backend; }
  bool complete() const { return envelope_.complete(); }

  /// Declares the window this partial is a checkpoint of (>= run_end);
  /// writers call it before serializing an unfinished checkpoint.
  void extend_window(std::size_t target_end) {
    envelope_.extend_window(target_end);
  }

  /// Folds `next` in; it must be the same experiment and start exactly
  /// where this partial's coverage ends (PartialEnvelope::check_merge).
  void merge(const ExperimentPartial& next) {
    envelope_.check_merge(next.envelope_);
    payload_.merge(next.payload_);
    envelope_.absorb(next.envelope_);
  }

  /// Reduces to the experiment's series / result type; extra arguments
  /// (e.g. the defection trim fraction) forward to the payload.
  template <typename... Args>
  auto finalize(Args&&... args) const {
    return payload_.finalize(envelope_, std::forward<Args>(args)...);
  }

  std::size_t accumulator_bytes() const {
    return payload_.accumulator_bytes();
  }

  util::json::Value to_json() const {
    util::json::Value v = util::json::Value::object();
    v.set("envelope", envelope_.to_json());
    v.set("payload", payload_.to_json());
    return v;
  }

  /// Inverts to_json; throws std::invalid_argument (naming both kinds) on
  /// a partial of a different experiment family — the cross-kind guard.
  static ExperimentPartial from_json(const util::json::Value& value) {
    PartialEnvelope envelope =
        PartialEnvelope::from_json(value.at("envelope"));
    RS_REQUIRE(envelope.kind == Payload::kKind,
               "partial is kind \"" + envelope.kind +
                   "\" but this experiment expects \"" +
                   std::string(Payload::kKind) +
                   "\" — refusing the cross-kind load");
    Payload payload = Payload::from_json(value.at("payload"), envelope);
    return ExperimentPartial(std::move(envelope), std::move(payload));
  }

 private:
  PartialEnvelope envelope_;
  Payload payload_;
};

/// Envelope for a freshly executed window [begin, end): complete by
/// construction (window_end == run_end).
inline PartialEnvelope make_envelope(std::string_view kind,
                                     std::string spec_hash,
                                     AggBackend backend,
                                     std::size_t runs_total,
                                     std::size_t rounds, std::size_t begin,
                                     std::size_t end) {
  PartialEnvelope envelope;
  envelope.kind = std::string(kind);
  envelope.spec_hash = std::move(spec_hash);
  envelope.backend = backend;
  envelope.runs_total = runs_total;
  envelope.rounds = rounds;
  envelope.run_begin = begin;
  envelope.run_end = end;
  envelope.window_end = end;
  envelope.validate();
  return envelope;
}

}  // namespace roleshare::sim
