#include "net/gossip.hpp"

#include <gtest/gtest.h>

namespace roleshare::net {
namespace {

// Ring topology 0 -> 1 -> 2 -> ... -> n-1 -> 0 makes path lengths exact.
Topology ring(std::size_t n) {
  std::vector<std::vector<ledger::NodeId>> adj(n);
  for (std::size_t v = 0; v < n; ++v)
    adj[v].push_back(static_cast<ledger::NodeId>((v + 1) % n));
  return Topology::from_adjacency(std::move(adj));
}

TEST(Gossip, FullCooperationReachesEveryone) {
  util::Rng rng(1);
  const Topology t = ring(10);
  const ConstantDelay delay(10.0);
  const GossipEngine engine(t, delay);
  const RelaySet relay = RelaySet::all_cooperative(10);
  const auto arrivals = engine.propagate(0, 0.0, relay, rng);
  for (std::size_t v = 0; v < 10; ++v) {
    EXPECT_DOUBLE_EQ(arrivals[v], 10.0 * static_cast<double>(v));
  }
  EXPECT_DOUBLE_EQ(GossipEngine::reach_fraction(arrivals, relay, 90.0), 1.0);
}

TEST(Gossip, DefectorReceivesButDoesNotRelay) {
  util::Rng rng(1);
  const Topology t = ring(5);
  const ConstantDelay delay(1.0);
  const GossipEngine engine(t, delay);
  RelaySet relay = RelaySet::all_cooperative(5);
  relay.relays[2] = false;  // node 2 defects
  const auto arrivals = engine.propagate(0, 0.0, relay, rng);
  EXPECT_DOUBLE_EQ(arrivals[1], 1.0);
  EXPECT_DOUBLE_EQ(arrivals[2], 2.0);  // still receives
  EXPECT_EQ(arrivals[3], kNever);      // cut off behind the defector
  EXPECT_EQ(arrivals[4], kNever);
}

TEST(Gossip, OfflineNodeNeverReceives) {
  util::Rng rng(1);
  const Topology t = ring(4);
  const ConstantDelay delay(1.0);
  const GossipEngine engine(t, delay);
  RelaySet relay = RelaySet::all_cooperative(4);
  relay.online[1] = false;
  const auto arrivals = engine.propagate(0, 0.0, relay, rng);
  EXPECT_EQ(arrivals[1], kNever);
  EXPECT_EQ(arrivals[2], kNever);  // ring is cut
}

TEST(Gossip, OfflineOriginSendsNothing) {
  util::Rng rng(1);
  const Topology t = ring(4);
  const ConstantDelay delay(1.0);
  const GossipEngine engine(t, delay);
  RelaySet relay = RelaySet::all_cooperative(4);
  relay.online[0] = false;
  const auto arrivals = engine.propagate(0, 0.0, relay, rng);
  for (const auto a : arrivals) EXPECT_EQ(a, kNever);
}

TEST(Gossip, DefectingOriginStillTransmits) {
  // A defector that *originates* a message (e.g. its own transaction)
  // still sends it; it only refuses to forward others' traffic.
  util::Rng rng(1);
  const Topology t = ring(4);
  const ConstantDelay delay(1.0);
  const GossipEngine engine(t, delay);
  RelaySet relay = RelaySet::all_cooperative(4);
  relay.relays[0] = false;
  const auto arrivals = engine.propagate(0, 0.0, relay, rng);
  EXPECT_DOUBLE_EQ(arrivals[1], 1.0);
}

TEST(Gossip, StartOffsetShiftsArrivals) {
  util::Rng rng(1);
  const Topology t = ring(3);
  const ConstantDelay delay(2.0);
  const GossipEngine engine(t, delay);
  const RelaySet relay = RelaySet::all_cooperative(3);
  const auto arrivals = engine.propagate(0, 100.0, relay, rng);
  EXPECT_DOUBLE_EQ(arrivals[0], 100.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 102.0);
}

TEST(Gossip, DelayFactorScalesArrivals) {
  util::Rng rng(1);
  const Topology t = ring(3);
  const ConstantDelay delay(2.0);
  const GossipEngine slow(t, delay, 4.0);
  const RelaySet relay = RelaySet::all_cooperative(3);
  const auto arrivals = slow.propagate(0, 0.0, relay, rng);
  EXPECT_DOUBLE_EQ(arrivals[1], 8.0);
  EXPECT_DOUBLE_EQ(arrivals[2], 16.0);
}

TEST(Gossip, RemovingRelaysNeverImprovesReachability) {
  // Monotonicity: on a fixed topology with constant delays, disabling a
  // relay cannot make any node reachable sooner.
  util::Rng rng1(5);
  const Topology t = [&] {
    util::Rng trng(99);
    return Topology::random_k_out(60, 4, trng);
  }();
  const ConstantDelay delay(1.0);
  const GossipEngine engine(t, delay);

  const RelaySet full = RelaySet::all_cooperative(60);
  const auto base = engine.propagate(0, 0.0, full, rng1);

  RelaySet degraded = full;
  util::Rng pick(7);
  for (int i = 0; i < 15; ++i)
    degraded.relays[static_cast<std::size_t>(pick.uniform_int(1, 59))] = false;
  util::Rng rng2(5);
  const auto worse = engine.propagate(0, 0.0, degraded, rng2);
  for (std::size_t v = 0; v < 60; ++v) {
    EXPECT_GE(worse[v], base[v]) << "node " << v;
  }
}

TEST(Gossip, ReachFractionCountsOnlineOnly) {
  RelaySet relay;
  relay.relays = {true, true, true, true};
  relay.online = {true, true, false, true};
  const std::vector<TimeMs> arrivals = {0.0, 5.0, 1.0, kNever};
  // Online: nodes 0, 1, 3; reached by t=6: nodes 0 and 1.
  EXPECT_DOUBLE_EQ(GossipEngine::reach_fraction(arrivals, relay, 6.0),
                   2.0 / 3.0);
}

TEST(Gossip, RandomTopologyFullReachUnderStrongSynchrony) {
  util::Rng trng(11);
  const Topology t = Topology::random_k_out(200, 5, trng);
  const UniformDelay delay(20.0, 120.0);
  const GossipEngine engine(t, delay);
  const RelaySet relay = RelaySet::all_cooperative(200);
  util::Rng rng(12);
  const auto arrivals = engine.propagate(0, 0.0, relay, rng);
  // In a 5-out random digraph a node has in-degree 0 with probability
  // ~e^-5, so a handful of the 200 nodes can be unreachable; strong
  // synchrony still reaches (nearly) everyone within a generous deadline.
  EXPECT_GE(GossipEngine::reach_fraction(arrivals, relay, 10'000.0), 0.97);
}

TEST(Gossip, TotalLossOnRingCutsPropagation) {
  // On a ring there is exactly one path; near-certain loss severs it.
  util::Rng rng(21);
  const Topology t = ring(6);
  const ConstantDelay delay(1.0);
  const GossipEngine lossy(t, delay, 1.0, 0.99);
  const RelaySet relay = RelaySet::all_cooperative(6);
  const auto arrivals = lossy.propagate(0, 0.0, relay, rng);
  std::size_t reached = 0;
  for (const auto a : arrivals)
    if (a < kNever) ++reached;
  EXPECT_LT(reached, 6u);
}

TEST(Gossip, RedundantTopologyMasksModerateLoss) {
  // A 5-out digraph has enough path diversity that 10% per-hop loss barely
  // dents reachability.
  util::Rng trng(22);
  const Topology t = Topology::random_k_out(150, 5, trng);
  const ConstantDelay delay(1.0);
  const GossipEngine lossy(t, delay, 1.0, 0.10);
  const RelaySet relay = RelaySet::all_cooperative(150);
  util::Rng rng(23);
  const auto arrivals = lossy.propagate(0, 0.0, relay, rng);
  EXPECT_GE(GossipEngine::reach_fraction(arrivals, relay, 1e9), 0.9);
}

TEST(Gossip, LossDegradesMonotonically) {
  util::Rng trng(24);
  const Topology t = Topology::random_k_out(150, 4, trng);
  const ConstantDelay delay(1.0);
  const RelaySet relay = RelaySet::all_cooperative(150);
  double prev_reach = 1.1;
  for (const double loss : {0.0, 0.3, 0.6, 0.9}) {
    const GossipEngine engine(t, delay, 1.0, loss);
    double reach = 0.0;
    for (std::uint64_t s = 0; s < 8; ++s) {
      util::Rng rng(30 + s);
      const auto arrivals = engine.propagate(0, 0.0, relay, rng);
      reach += GossipEngine::reach_fraction(arrivals, relay, 1e9);
    }
    reach /= 8;
    EXPECT_LE(reach, prev_reach + 0.05) << "loss=" << loss;
    prev_reach = reach;
  }
}

TEST(Gossip, RejectsBadLossProbability) {
  util::Rng rng(25);
  const Topology t = ring(3);
  const ConstantDelay delay(1.0);
  EXPECT_THROW(GossipEngine(t, delay, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(GossipEngine(t, delay, 1.0, -0.1), std::invalid_argument);
}

TEST(Gossip, SizeMismatchRejected) {
  util::Rng rng(1);
  const Topology t = ring(3);
  const ConstantDelay delay(1.0);
  const GossipEngine engine(t, delay);
  RelaySet relay = RelaySet::all_cooperative(2);
  EXPECT_THROW(engine.propagate(0, 0.0, relay, rng), std::invalid_argument);
}

}  // namespace
}  // namespace roleshare::net
