// Algorithm 1 — Incentive-Compatible Reward Sharing.
//
// At the end of each round the Foundation computes S_L, S_M, S_K and the
// per-role minimum stakes, then picks (α, β) minimizing the Theorem-3
// required reward B_i. The minimization has a closed form:
//
// Write the bounds with slack variables a = α − α_min, b = β − β_min where
// α_min = S_L·γ/(S_K+s*_l) and β_min = S_M·γ/(S_K+s*_m) are the Eq-(8)/(9)
// feasibility floors. Then
//     leader bound    = A / a,   A = (c_L − c_so)·S_L / s*_l
//     committee bound = B / b,   B = (c_M − c_so)·S_M / s*_m
//     online bound    = D / γ,   D = (c_K − c_so)·S_K / s*_k
// With a + b = 1 − γ(1 + C) fixed (C = S_L/(S_K+s*_l) + S_M/(S_K+s*_m)),
// max(A/a, B/b) is minimized by the equalizing split a : b = A : B, giving
// the role bound R(γ) = (A+B) / (1 − γ(1+C)) — strictly increasing in γ —
// while the online bound D/γ strictly decreases. The minimum of their max
// is at the crossing:
//     γ* = D / (A + B + D(1+C)),   B_i* = D / γ* = A + B + D(1+C).
//
// On the paper's §V-A numbers this yields B_i* ≈ 5.09 Algos at tiny (α, β)
// — the floor under the ≈5.2 Algos the paper quotes at (0.02, 0.03).
#pragma once

#include "econ/bi_bounds.hpp"

namespace roleshare::econ {

struct OptimizerConfig {
  /// Safety margin: the returned B_i is (1 + margin) × the binding bound,
  /// so the Theorem-3 inequalities are strict.
  double margin = 1e-6;
  /// Floor on γ (and on the α/β slacks) to keep the split strictly
  /// interior when the online bound vanishes (c_K == c_so).
  double min_share = 1e-9;
};

struct OptimizerResult {
  RewardSplit split{0.01, 0.01};
  BiBounds bounds;
  /// Minimal incentive-compatible per-round reward, µAlgos
  /// ((1 + margin) × binding bound).
  double min_bi = 0;
  bool feasible = false;
};

class RewardOptimizer {
 public:
  explicit RewardOptimizer(OptimizerConfig config = OptimizerConfig{});

  /// Runs Algorithm 1's ComputeParameters for one round's population.
  OptimizerResult optimize(const BoundInputs& inputs,
                           const CostModel& costs) const;

  /// Convenience overload extracting the aggregates from a snapshot.
  OptimizerResult optimize(const RoleSnapshot& snapshot,
                           const CostModel& costs) const;

 private:
  OptimizerConfig config_;
};

}  // namespace roleshare::econ
