// orch::wire — the framed message grammar the shard orchestration
// coordinator and its worker agents speak (DESIGN.md §11). These tests
// pin the on-wire form of every message type and the rejection
// discipline the socket layer depends on: truncation at ANY byte and a
// flip of ANY byte of a frame must throw a named error — a coordinator
// that folds a corrupted partial path, or a worker that runs a mangled
// window, silently corrupts the experiment.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "orch/wire.hpp"
#include "util/framed_io.hpp"

namespace {

using roleshare::orch::decode_frame;
using roleshare::orch::encode;
using roleshare::orch::kMaxMessageBytes;
using roleshare::orch::Message;
using roleshare::orch::MessageBuffer;
using roleshare::orch::MsgType;
using roleshare::util::framed::Error;

// One representative message per type, every sent field non-default so a
// round-trip that drops or reorders a field cannot pass by accident.
std::vector<Message> sample_messages() {
  return {
      roleshare::orch::hello(7, "{\"bench\":\"fig6\",\"nodes\":3000}"),
      roleshare::orch::assign(3, 2, 12, 18, "sp/w3.a2.partial",
                              "sp/w3.a1.partial"),
      roleshare::orch::progress(3, 2, 15),
      roleshare::orch::done(3, 2, true, 4096, "sp/w3.a2.partial"),
      roleshare::orch::fail(3, 2, "precondition failed: S_K > 0"),
      roleshare::orch::shutdown("job complete"),
  };
}

// The frame bytes of a message: the encoded form minus the u32 length
// prefix (decode_frame's input — the buffer layer strips the prefix).
std::string frame_of(const Message& m) {
  const std::string wire = encode(m);
  EXPECT_GE(wire.size(), 4u);
  std::uint32_t len = 0;
  std::memcpy(&len, wire.data(), 4);
  EXPECT_EQ(len, wire.size() - 4);
  return wire.substr(4);
}

void expect_equal(const Message& a, const Message& b) {
  ASSERT_EQ(a.type, b.type);
  switch (a.type) {
    case MsgType::Hello:
      EXPECT_EQ(a.worker_id, b.worker_id);
      EXPECT_EQ(a.config_echo, b.config_echo);
      break;
    case MsgType::Assign:
      EXPECT_EQ(a.window_index, b.window_index);
      EXPECT_EQ(a.attempt, b.attempt);
      EXPECT_EQ(a.run_begin, b.run_begin);
      EXPECT_EQ(a.run_end, b.run_end);
      EXPECT_EQ(a.spool_path, b.spool_path);
      EXPECT_EQ(a.resume_path, b.resume_path);
      break;
    case MsgType::Progress:
      EXPECT_EQ(a.window_index, b.window_index);
      EXPECT_EQ(a.attempt, b.attempt);
      EXPECT_EQ(a.cursor, b.cursor);
      break;
    case MsgType::Done:
      EXPECT_EQ(a.window_index, b.window_index);
      EXPECT_EQ(a.attempt, b.attempt);
      EXPECT_EQ(a.store_hit, b.store_hit);
      EXPECT_EQ(a.partial_bytes, b.partial_bytes);
      EXPECT_EQ(a.spool_path, b.spool_path);
      break;
    case MsgType::Fail:
      EXPECT_EQ(a.window_index, b.window_index);
      EXPECT_EQ(a.attempt, b.attempt);
      EXPECT_EQ(a.error, b.error);
      break;
    case MsgType::Shutdown:
      EXPECT_EQ(a.reason, b.reason);
      break;
  }
}

TEST(OrchWire, EveryMessageTypeRoundTrips) {
  for (const Message& m : sample_messages()) {
    SCOPED_TRACE(roleshare::orch::to_string(m.type));
    const Message back = decode_frame(frame_of(m), "unit test");
    expect_equal(m, back);
  }
}

TEST(OrchWire, SectionNameIsTheMessageType) {
  // The frame grammar promises exactly one section whose NAME is the
  // type string — that is what decode_frame dispatches on, and what a
  // human sees hexdumping a spooled stream.
  for (const Message& m : sample_messages()) {
    const std::string frame = frame_of(m);  // Reader keeps only a view
    roleshare::util::framed::Reader r(frame, roleshare::orch::kWireMagic,
                                      roleshare::orch::kWireVersion,
                                      "unit test");
    EXPECT_EQ(r.peek_section_name(), roleshare::orch::to_string(m.type));
  }
}

TEST(OrchWire, EveryTruncatedPrefixIsRejected) {
  for (const Message& m : sample_messages()) {
    const std::string frame = frame_of(m);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      EXPECT_THROW(decode_frame(frame.substr(0, len), "truncated"), Error)
          << roleshare::orch::to_string(m.type) << " prefix of " << len
          << " bytes was accepted";
    }
  }
}

TEST(OrchWire, EveryByteFlipIsRejected) {
  // A flip in a payload byte trips the per-section FNV-1a checksum; a
  // flip in the header, a length, the section name or the checksum
  // itself breaks the structure. Either way decode must throw — there
  // is no byte whose corruption is survivable.
  for (const Message& m : sample_messages()) {
    const std::string frame = frame_of(m);
    for (std::size_t i = 0; i < frame.size(); ++i) {
      std::string bad = frame;
      bad[i] = static_cast<char>(bad[i] ^ 0x40);
      EXPECT_THROW(decode_frame(bad, "flipped"), Error)
          << roleshare::orch::to_string(m.type) << " flip at byte " << i
          << " was accepted";
    }
  }
}

TEST(OrchWire, TrailingBytesAreRejected) {
  for (const Message& m : sample_messages()) {
    EXPECT_THROW(decode_frame(frame_of(m) + "x", "trailing"), Error);
  }
}

TEST(OrchWire, UnknownSectionNameIsRejected) {
  roleshare::util::framed::Writer w(roleshare::orch::kWireMagic,
                                    roleshare::orch::kWireVersion);
  w.begin_section("BOGUS");
  w.put_u32(1);
  w.end_section();
  EXPECT_THROW(decode_frame(w.finish(), "unit test"), Error);
}

TEST(OrchWire, BufferReassemblesOneByteAtATime) {
  // Sockets deliver arbitrary chunks; the buffer must pop nothing until
  // the final byte of a message arrives, then pop exactly that message.
  for (const Message& m : sample_messages()) {
    const std::string wire = encode(m);
    MessageBuffer buf("unit test");
    for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
      buf.feed(std::string_view(wire).substr(i, 1));
      EXPECT_FALSE(buf.next().has_value()) << "popped early at byte " << i;
    }
    buf.feed(std::string_view(wire).substr(wire.size() - 1, 1));
    const std::optional<Message> back = buf.next();
    ASSERT_TRUE(back.has_value());
    expect_equal(m, *back);
    EXPECT_EQ(buf.pending_bytes(), 0u);
    EXPECT_FALSE(buf.next().has_value());
  }
}

TEST(OrchWire, BufferPopsConcatenatedMessagesInOrder) {
  const std::vector<Message> messages = sample_messages();
  std::string stream;
  for (const Message& m : messages) stream += encode(m);
  MessageBuffer buf("unit test");
  buf.feed(stream);
  for (const Message& m : messages) {
    const std::optional<Message> back = buf.next();
    ASSERT_TRUE(back.has_value());
    expect_equal(m, *back);
  }
  EXPECT_FALSE(buf.next().has_value());
  EXPECT_EQ(buf.pending_bytes(), 0u);
}

TEST(OrchWire, BufferTracksPendingBytesMidMessage) {
  const std::string wire = encode(roleshare::orch::progress(1, 1, 5));
  MessageBuffer buf("unit test");
  buf.feed(std::string_view(wire).substr(0, wire.size() / 2));
  EXPECT_FALSE(buf.next().has_value());
  // A nonzero pending count at EOF is how the coordinator detects a
  // worker that died mid-message.
  EXPECT_EQ(buf.pending_bytes(), wire.size() / 2);
}

TEST(OrchWire, ZeroLengthPrefixIsStreamCorruption) {
  MessageBuffer buf("unit test");
  buf.feed(std::string(4, '\0'));
  EXPECT_THROW(buf.next(), Error);
}

TEST(OrchWire, OversizedLengthPrefixIsRejectedBeforeBuffering) {
  // The declared length is bounds-checked BEFORE any waiting/allocation:
  // a corrupt prefix must not make the coordinator buffer 4 GiB.
  const std::uint32_t huge = kMaxMessageBytes + 1;
  std::string prefix(4, '\0');
  std::memcpy(prefix.data(), &huge, 4);
  MessageBuffer buf("unit test");
  buf.feed(prefix);
  EXPECT_THROW(buf.next(), Error);
}

TEST(OrchWire, OversizedMessageRefusesToEncode) {
  EXPECT_THROW(
      encode(roleshare::orch::shutdown(std::string(kMaxMessageBytes, 'x'))),
      std::exception);
}

TEST(OrchWire, SendToDeadPeerThrowsInsteadOfRaisingSigpipe) {
  // The coordinator routinely writes to a worker that just died (it
  // reaps the pid before reading the socket EOF, then assigns). That
  // write must come back as a catchable exception — under the default
  // SIGPIPE disposition it would kill the whole process instead,
  // orphaning the fleet. This test dies by signal if send_message ever
  // regresses to a bare write().
  int pair[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, pair), 0);
  ::close(pair[1]);  // the "worker" is gone
  // First send may land in the (dead) socket's buffer; a second send is
  // guaranteed EPIPE on AF_UNIX once the peer is closed.
  try {
    roleshare::orch::send_message(pair[0], roleshare::orch::progress(0, 1, 0));
    roleshare::orch::send_message(pair[0], roleshare::orch::progress(0, 1, 1));
    FAIL() << "send_message to a closed peer did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("PROGRESS"), std::string::npos)
        << e.what();
  }
  ::close(pair[0]);
}

}  // namespace
