#include "crypto/keypair.hpp"

namespace roleshare::crypto {

namespace {

// The "signature" is a hash keyed by the *public* key. Anyone could forge
// it, which is acceptable for simulation (no forging adversaries) and makes
// verification possible without the secret.
Signature compute_signature(const PublicKey& pk, const Hash256& message) {
  return Signature{
      HashBuilder("roleshare.sig").add(pk.value).add(message).build()};
}

}  // namespace

KeyPair::KeyPair(Hash256 secret, PublicKey pub)
    : secret_(secret), public_key_(pub) {}

KeyPair KeyPair::derive(std::uint64_t seed, std::uint64_t node_id) {
  const Hash256 secret =
      HashBuilder("roleshare.sk").add_u64(seed).add_u64(node_id).build();
  const PublicKey pub{HashBuilder("roleshare.pk").add(secret).build()};
  return KeyPair(secret, pub);
}

Signature KeyPair::sign(const Hash256& message) const {
  return compute_signature(public_key_, message);
}

bool verify(const PublicKey& pk, const Hash256& message,
            const Signature& sig) {
  return compute_signature(pk, message) == sig;
}

}  // namespace roleshare::crypto
