// Shared helpers for the table/figure reproduction binaries: consistent
// headers, simple argument parsing (--key=value overrides so the same
// binary can be run at paper scale or smoke-test scale), wall-clock
// timing, and machine-readable BENCH_*.json result files for the perf
// trajectory.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include <sys/resource.h>

namespace roleshare::bench {

inline void print_header(const char* experiment_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("Fooladgar et al., \"On Incentive Compatible Role-Based Reward\n"
              "Distribution in Algorand\" (DSN 2020) — RoleShare reproduction\n");
  std::printf("================================================================\n");
}

/// Parses "--name=value" from argv; returns fallback when absent.
inline long long arg_int(int argc, char** argv, const std::string& name,
                         long long fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return std::atoll(arg.substr(prefix.size()).c_str());
  }
  return fallback;
}

/// Parses "--name=value" from argv as a double; returns fallback when
/// absent (e.g. --alpha=0.3, --top-fraction=0.01).
inline double arg_real(int argc, char** argv, const std::string& name,
                       double fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0)
      return std::atof(arg.substr(prefix.size()).c_str());
  }
  return fallback;
}

/// Parses "--name=value" from argv as a string; returns fallback when
/// absent (e.g. --agg=streaming, --partial-out=shard0.json).
inline std::string arg_string(int argc, char** argv, const std::string& name,
                              const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

/// The unified `--threads=N` knob every runner-backed binary exposes
/// (0 = all hardware threads; default 1 keeps output comparable with the
/// serial baselines).
inline std::size_t arg_threads(int argc, char** argv) {
  return static_cast<std::size_t>(arg_int(argc, argv, "threads", 1));
}

/// The `--inner-threads=N` knob: within-run worker threads for the round
/// engine's per-node loops (0 = all hardware threads). Forced serial by
/// the experiment runner whenever `--threads` makes the run fan-out
/// parallel, so the two knobs can never oversubscribe the machine.
inline std::size_t arg_inner_threads(int argc, char** argv) {
  return static_cast<std::size_t>(arg_int(argc, argv, "inner-threads", 1));
}

/// Wall-clock stopwatch for the BENCH_*.json timing fields.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double elapsed_ms() const {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(now - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// One BENCH_*.json field value: a number or a string. Implicit
/// constructors keep the brace-initialized call sites that predate string
/// support compiling unchanged.
class JsonValue {
 public:
  /// One constrained template instead of per-type overloads: any
  /// arithmetic type (int64_t stakes, size_t counts, doubles) converts
  /// without overload-rank ambiguity.
  template <typename T,
            typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  JsonValue(T v) : num_(static_cast<double>(v)) {}       // NOLINT(runtime/explicit)
  JsonValue(std::string v)                               // NOLINT(runtime/explicit)
      : str_(std::move(v)), is_string_(true) {}
  JsonValue(const char* v) : str_(v), is_string_(true) {} // NOLINT(runtime/explicit)

  bool is_string() const { return is_string_; }
  double number() const { return num_; }
  const std::string& string() const { return str_; }

 private:
  double num_ = 0.0;
  std::string str_;
  bool is_string_ = false;
};

using JsonFields = std::vector<std::pair<std::string, JsonValue>>;

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters).
inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Git SHA from the build-time-generated rs_git_sha.h (cmake/git_sha.cmake
/// refreshes it on every build, so incremental rebuilds after new commits
/// stamp the right SHA); "unknown" outside the CMake build or a git
/// checkout. Always present so the perf trajectory can key on it.
#if __has_include("rs_git_sha.h")
#include "rs_git_sha.h"
#endif
inline const char* git_sha() {
#ifdef RS_GIT_SHA
  return RS_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Peak resident set size of this process in bytes (getrusage); the
/// BENCH_*.json field that tracks the exact-vs-streaming accumulator
/// memory win over time. 0 where the platform reports nothing useful.
inline double peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
#ifdef __APPLE__
  return static_cast<double>(usage.ru_maxrss);  // already bytes
#else
  return static_cast<double>(usage.ru_maxrss) * 1024.0;  // Linux: KiB
#endif
}

/// Reads a whole file; throws std::runtime_error naming the path when it
/// cannot be opened (shard partials, series snapshots).
inline std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Writes a whole file; throws std::runtime_error naming the path on
/// failure.
inline void write_text_file(const std::string& path,
                            const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
  if (!out) throw std::runtime_error("short write to " + path);
}

/// Writes BENCH_<name>.json next to the binary's working directory:
/// a flat object of numeric and string fields (timings, config, headline
/// results) so the perf trajectory can be tracked without scraping stdout.
/// The building git SHA and the process's peak RSS are appended to every
/// file automatically.
inline void emit_json(const std::string& name, const JsonFields& fields) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"%s\"", json_escape(name).c_str());
  for (const auto& [key, value] : fields) {
    if (value.is_string()) {
      std::fprintf(out, ",\n  \"%s\": \"%s\"", json_escape(key).c_str(),
                   json_escape(value.string()).c_str());
    } else if (!std::isfinite(value.number())) {
      // JSON has no NaN/Infinity literal; null keeps the file parseable
      // (NaN legitimately reaches here via PerRoundSamples' empty-round
      // semantics under churn).
      std::fprintf(out, ",\n  \"%s\": null", json_escape(key).c_str());
    } else {
      std::fprintf(out, ",\n  \"%s\": %.17g", json_escape(key).c_str(),
                   value.number());
    }
  }
  std::fprintf(out, ",\n  \"peak_rss_bytes\": %.17g", peak_rss_bytes());
  std::fprintf(out, ",\n  \"git_sha\": \"%s\"\n}\n",
               json_escape(git_sha()).c_str());
  std::fclose(out);
  std::printf("\n[bench] wrote %s\n", path.c_str());
}

}  // namespace roleshare::bench
