// Stake-distribution samplers used throughout the paper's evaluation:
// U(1,50) for the Fig-3 network experiments, U(1,200) / N(100,20) /
// N(100,10) / N(2000,25) for the Fig-6/7 reward analysis.
//
// Stakes are positive integers (whole Algos, as in the paper). Normal draws
// are rounded and clamped below at `min_stake` so no account ends up with a
// non-positive stake.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace roleshare::util {

/// Abstract sampler for a single account's stake, in whole Algos.
class StakeDistribution {
 public:
  virtual ~StakeDistribution() = default;

  /// Draws one stake value (always >= 1).
  virtual std::int64_t sample(Rng& rng) const = 0;

  /// Human-readable name, e.g. "U(1,200)" — used in benchmark output rows.
  virtual std::string name() const = 0;

  /// Draws `n` stakes.
  std::vector<std::int64_t> sample_many(Rng& rng, std::size_t n) const;
};

/// Discrete uniform on [lo, hi], inclusive.
class UniformStake final : public StakeDistribution {
 public:
  UniformStake(std::int64_t lo, std::int64_t hi);
  std::int64_t sample(Rng& rng) const override;
  std::string name() const override;

 private:
  std::int64_t lo_;
  std::int64_t hi_;
};

/// Rounded normal N(mean, sigma), clamped to be >= min_stake.
class NormalStake final : public StakeDistribution {
 public:
  NormalStake(double mean, double sigma, std::int64_t min_stake = 1);
  std::int64_t sample(Rng& rng) const override;
  std::string name() const override;

 private:
  double mean_;
  double sigma_;
  std::int64_t min_stake_;
};

/// Every account holds exactly the same stake.
class ConstantStake final : public StakeDistribution {
 public:
  explicit ConstantStake(std::int64_t value);
  std::int64_t sample(Rng& rng) const override;
  std::string name() const override;

 private:
  std::int64_t value_;
};

/// Factory helpers for the distributions named in the paper.
std::unique_ptr<StakeDistribution> make_uniform_stake(std::int64_t lo,
                                                      std::int64_t hi);
std::unique_ptr<StakeDistribution> make_normal_stake(double mean, double sigma,
                                                     std::int64_t min = 1);
std::unique_ptr<StakeDistribution> make_constant_stake(std::int64_t value);

}  // namespace roleshare::util
