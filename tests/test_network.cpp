#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace roleshare::sim {
namespace {

NetworkConfig small_config() {
  NetworkConfig config;
  config.node_count = 60;
  config.seed = 11;
  config.fan_out = 5;
  return config;
}

TEST(Network, BuildsAccountsAndKeys) {
  const Network net(small_config());
  EXPECT_EQ(net.node_count(), 60u);
  EXPECT_EQ(net.accounts().size(), 60u);
  EXPECT_EQ(net.keys().size(), 60u);
  for (std::size_t v = 0; v < 60; ++v) {
    const auto stake = net.accounts().stake(static_cast<ledger::NodeId>(v));
    EXPECT_GE(stake, 1);
    EXPECT_LE(stake, 50);  // default U(1, 50)
  }
}

TEST(Network, KeysMatchAccounts) {
  const Network net(small_config());
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    EXPECT_EQ(net.accounts().account(static_cast<ledger::NodeId>(v)).key,
              net.keys()[v].public_key());
  }
}

TEST(Network, DeterministicForSeed) {
  const Network a(small_config());
  const Network b(small_config());
  EXPECT_EQ(a.accounts().stakes(), b.accounts().stakes());
  for (std::size_t v = 0; v < a.node_count(); ++v)
    EXPECT_EQ(a.behavior(static_cast<ledger::NodeId>(v)),
              b.behavior(static_cast<ledger::NodeId>(v)));
}

TEST(Network, DifferentSeedsDiffer) {
  NetworkConfig other = small_config();
  other.seed = 12;
  const Network a(small_config());
  const Network b(other);
  EXPECT_NE(a.accounts().stakes(), b.accounts().stakes());
}

TEST(Network, DefectionRateAssignsScriptedDefectors) {
  NetworkConfig config = small_config();
  config.defection_rate = 0.25;
  const Network net(config);
  std::size_t defectors = 0;
  for (std::size_t v = 0; v < net.node_count(); ++v)
    if (net.behavior(static_cast<ledger::NodeId>(v)) ==
        BehaviorType::ScriptedDefect)
      ++defectors;
  EXPECT_EQ(defectors, 15u);  // 25% of 60
}

TEST(Network, FaultyRateAssignsOfflineNodes) {
  NetworkConfig config = small_config();
  config.defection_rate = 0.1;
  config.faulty_rate = 0.1;
  const Network net(config);
  std::size_t defect = 0, faulty = 0;
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    const auto b = net.behavior(static_cast<ledger::NodeId>(v));
    if (b == BehaviorType::ScriptedDefect) ++defect;
    if (b == BehaviorType::Faulty) ++faulty;
  }
  EXPECT_EQ(defect, 6u);
  EXPECT_EQ(faulty, 6u);
}

TEST(Network, StrategiesFollowBehaviors) {
  NetworkConfig config = small_config();
  config.defection_rate = 0.2;
  Network net(config);
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    const auto b = net.behavior(static_cast<ledger::NodeId>(v));
    const auto s = net.strategies()[v];
    if (b == BehaviorType::Honest) {
      EXPECT_EQ(s, game::Strategy::Cooperate);
    }
    if (b == BehaviorType::ScriptedDefect) {
      EXPECT_EQ(s, game::Strategy::Defect);
    }
    if (b == BehaviorType::Faulty) {
      EXPECT_EQ(s, game::Strategy::Offline);
    }
  }
}

TEST(Network, SelfishResidualReactsToRewards) {
  NetworkConfig config = small_config();
  config.selfish_residual = true;
  Network net(config);
  util::Rng rng(1);
  // No rewards observed: all selfish nodes defect.
  net.decide_strategies(econ::CostModel{}, 0.0, rng);
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    if (net.behavior(static_cast<ledger::NodeId>(v)) ==
        BehaviorType::Selfish) {
      EXPECT_EQ(net.strategies()[v], game::Strategy::Defect);
    }
  }
  // Generous observed rate: they cooperate.
  net.decide_strategies(econ::CostModel{}, 100.0, rng);
  for (std::size_t v = 0; v < net.node_count(); ++v) {
    if (net.behavior(static_cast<ledger::NodeId>(v)) ==
        BehaviorType::Selfish) {
      EXPECT_EQ(net.strategies()[v], game::Strategy::Cooperate);
    }
  }
}

TEST(Network, SetBehaviorOverrides) {
  Network net(small_config());
  net.set_behavior(3, BehaviorType::Faulty);
  EXPECT_EQ(net.behavior(3), BehaviorType::Faulty);
  EXPECT_THROW(net.set_behavior(999, BehaviorType::Honest),
               std::invalid_argument);
}

TEST(Network, RoundRngIsPerRoundDeterministic) {
  const Network net(small_config());
  util::Rng a = net.round_rng(5);
  util::Rng b = net.round_rng(5);
  util::Rng c = net.round_rng(6);
  EXPECT_EQ(a(), b());
  util::Rng a2 = net.round_rng(5);
  EXPECT_NE(a2(), c());
}

TEST(Network, TopologyHasConfiguredFanOut) {
  const Network net(small_config());
  EXPECT_EQ(net.topology().node_count(), 60u);
  EXPECT_EQ(net.topology().fan_out(), 5u);
}

TEST(Network, RejectsBadRates) {
  NetworkConfig config = small_config();
  config.defection_rate = 0.8;
  config.faulty_rate = 0.5;  // sum > 1
  EXPECT_THROW(Network{config}, std::invalid_argument);
  config = small_config();
  config.node_count = 2;
  EXPECT_THROW(Network{config}, std::invalid_argument);
}

TEST(Network, GenesisChainReady) {
  const Network net(small_config());
  EXPECT_EQ(net.chain().height(), 1u);
  EXPECT_EQ(net.chain().next_round(), 1u);
}

}  // namespace
}  // namespace roleshare::sim
