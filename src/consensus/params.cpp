#include "consensus/params.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace roleshare::consensus {

double ConsensusParams::step_quorum() const {
  return step_threshold * static_cast<double>(expected_step_stake);
}

double ConsensusParams::final_quorum() const {
  return final_threshold * static_cast<double>(expected_final_stake);
}

std::uint64_t ConsensusParams::expected_committee_stake_per_round() const {
  return expected_step_stake * 3 + expected_final_stake;
}

void ConsensusParams::validate() const {
  RS_REQUIRE(expected_proposer_stake > 0, "tau_proposer > 0");
  RS_REQUIRE(expected_step_stake > 0, "tau_step > 0");
  RS_REQUIRE(expected_final_stake > 0, "tau_final > 0");
  RS_REQUIRE(step_threshold > 0.5 && step_threshold < 1.0,
             "step threshold in (0.5, 1)");
  RS_REQUIRE(final_threshold > 0.5 && final_threshold < 1.0,
             "final threshold in (0.5, 1)");
  RS_REQUIRE(max_binary_iterations > 0, "at least one binary iteration");
  RS_REQUIRE(proposal_timeout_ms > 0.0, "proposal timeout");
  RS_REQUIRE(step_timeout_ms > 0.0, "step timeout");
}

ConsensusParams ConsensusParams::scaled_for(std::int64_t total_stake) {
  RS_REQUIRE(total_stake > 0, "total stake");
  ConsensusParams p;
  // Mainnet defaults assume huge total stake. For small simulated networks
  // two forces compete: committees must carry enough expected sub-users
  // that the T-quorum is met reliably (variance ~ 1/sqrt(tau)), yet stay a
  // small enough stake fraction that most nodes remain role-less "Others"
  // (the paper's K set). Absolute targets of ~40 step / ~80 final
  // sub-users give <~2% per-step quorum misses while keeping committees a
  // minority; tiny networks fall back to stake fractions.
  const auto w = static_cast<std::uint64_t>(total_stake);
  const auto clamp = [w](double fraction, std::uint64_t lo,
                         std::uint64_t hi) {
    const auto by_fraction = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(w) * fraction));
    return std::min({std::max(lo, std::min(by_fraction, hi)), w});
  };
  p.expected_proposer_stake = clamp(0.002, 3, 10);
  p.expected_step_stake = clamp(0.02, 10, 40);
  p.expected_final_stake = clamp(0.06, 20, 80);
  p.validate();
  return p;
}

}  // namespace roleshare::consensus
